"""Schedule bundles: export trace graph + topology + schedule, re-import
without the generating code, and replay through the strict validator.
"""

import json

import pytest

from repro.errors import SchedulingError
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.graph.interchange import load_workload, relabel_tasks
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.network.topology import apply_link_model, fat_tree, ring
from repro.schedule.io import (
    bundle_from_dict,
    bundle_from_json,
    bundle_to_dict,
    bundle_to_json,
    read_bundle,
    schedule_to_json,
    write_bundle,
)
from repro.schedule.validator import validate_schedule
from repro.workloads.external import external_cell
from repro.workloads.suites import random_graph

TRACE_PATH = "examples/corpus/fft8.trace.json"


def _bsa_schedule():
    cell = external_cell(TRACE_PATH, algorithm="bsa", topology="ring")
    return _SCHEDULERS["bsa"](build_cell_system(cell))


class TestGoldenReplay:
    def test_bundle_replays_through_validator(self, tmp_path):
        """The golden replay: write a bundle, read it back cold, and the
        rebuilt schedule is validator-clean and byte-identical."""
        schedule = _bsa_schedule()
        path = str(tmp_path / "run.bundle.json")
        write_bundle(schedule, path)
        replay = read_bundle(path)
        validate_schedule(replay)  # full audit, no generating code
        assert schedule_to_json(replay) == schedule_to_json(schedule)
        assert replay.schedule_length() == schedule.schedule_length()
        assert replay.algorithm == schedule.algorithm

    def test_rebuilt_system_is_exact(self):
        schedule = _bsa_schedule()
        replay = bundle_from_dict(bundle_to_dict(schedule))
        original = schedule.system
        rebuilt = replay.system
        assert rebuilt.graph.tasks() == original.graph.tasks()
        for t in original.graph.tasks():
            assert rebuilt.exec_cost_row(t) == original.exec_cost_row(t)
            assert rebuilt.graph.cost(t) == original.graph.cost(t)
        assert rebuilt.topology.to_dict() == original.topology.to_dict()

    def test_heterogeneous_link_model_survives(self):
        # full-duplex skewed fat tree + per-message link factors: the
        # bundle must reproduce every hop duration exactly
        workload = load_workload(TRACE_PATH)
        topology = apply_link_model(
            fat_tree(8), duplex="full", bandwidth_skew=4.0, seed=3
        )
        system = workload.bind(topology, link_het_range=(1.0, 5.0), seed=9)
        assert system.link_mode is LinkHeterogeneity.PER_MESSAGE_LINK
        schedule = _SCHEDULERS["dls"](system)
        replay = bundle_from_json(bundle_to_json(schedule))
        validate_schedule(replay)
        assert schedule_to_json(replay) == schedule_to_json(schedule)

    def test_nominal_costs_survive_heterogeneity(self):
        # sampled systems with het_lo > 1 have nominal != min(vector);
        # the bundle records nominal costs explicitly
        graph = random_graph(15, seed=2)
        system = HeterogeneousSystem.sample(
            graph, ring(4), het_range=(2.0, 10.0), seed=1
        )
        schedule = _SCHEDULERS["heft"](system)
        replay = bundle_from_dict(bundle_to_dict(schedule))
        for t in graph.tasks():
            assert replay.system.graph.cost(t) == graph.cost(t)
        assert schedule_to_json(replay) == schedule_to_json(schedule)

    def test_tuple_ids_need_relabeling(self):
        from repro.workloads.forkjoin import fork_join

        graph = fork_join(2, 3)
        system = HeterogeneousSystem.sample(graph, ring(4), seed=0)
        schedule = _SCHEDULERS["heft"](system)
        with pytest.raises(Exception, match="relabel"):
            bundle_to_dict(schedule)
        # relabel_tasks is the documented escape hatch
        relabeled = relabel_tasks(graph)
        system2 = HeterogeneousSystem.sample(relabeled, ring(4), seed=0)
        replay = bundle_from_dict(
            bundle_to_dict(_SCHEDULERS["heft"](system2))
        )
        validate_schedule(replay)


class TestErrorPaths:
    def test_wrong_format_and_version(self):
        with pytest.raises(SchedulingError, match="not a repro-schedule-bundle"):
            bundle_from_dict({})
        with pytest.raises(SchedulingError, match="version"):
            bundle_from_dict({"format": "repro-schedule-bundle", "version": 9})
        with pytest.raises(SchedulingError, match="not valid JSON"):
            bundle_from_json("{")

    def test_scalar_graph_rejected(self):
        blob = bundle_to_dict(_bsa_schedule())
        for entry in blob["graph"]["tasks"]:
            entry["cost"] = min(entry.pop("costs"))
        blob["graph"].pop("n_procs")
        with pytest.raises(SchedulingError, match="exec-cost vectors"):
            bundle_from_dict(json.loads(json.dumps(blob)))

    def test_nominal_cost_count_mismatch(self):
        blob = bundle_to_dict(_bsa_schedule())
        blob["nominal_costs"] = blob["nominal_costs"][:-1]
        with pytest.raises(SchedulingError, match="nominal"):
            bundle_from_dict(blob)

    def test_unknown_link_mode(self):
        blob = bundle_to_dict(_bsa_schedule())
        blob["link_model"]["mode"] = "WARP"
        with pytest.raises(SchedulingError, match="link heterogeneity"):
            bundle_from_dict(blob)
