"""Cross-module integration tests: the full pipeline at miniature scale."""

import pytest

from repro import (
    HeterogeneousSystem,
    compute_metrics,
    hypercube,
    schedule_bsa,
    schedule_cpop,
    schedule_dls,
    schedule_heft,
    schedule_serial,
    validate_schedule,
)
from repro.baselines.dls import DLSOptions
from repro.experiments.cache import ResultCache
from repro.experiments.config import Scale
from repro.experiments.figures import figure3, figure7, runtime_study
from repro.experiments.reporting import render_figure, render_panels
from repro.workloads import regular_graph

TINY = Scale(
    name="tiny",
    sizes=(20,),
    granularities=(1.0,),
    topologies=("ring", "clique"),
    regular_apps=("laplace",),
    n_random_seeds=1,
    het_sweep_sizes=(20,),
    het_sweep_n_graphs=1,
    het_ranges=((1, 5), (1, 20)),
    algorithms=("dls", "bsa"),
)


@pytest.fixture
def tiny_cache(tmp_path):
    return ResultCache(str(tmp_path / "cells.json"))


class TestFigurePipeline:
    def test_figure3_tiny(self, tiny_cache):
        panels = figure3(scale=TINY, cache=tiny_cache)
        assert set(panels) == {"ring", "clique"}
        for fig in panels.values():
            assert fig.xs == [20]
            assert set(fig.series) == {"dls", "bsa"}
            assert all(v > 0 for vals in fig.series.values() for v in vals)
        text = render_panels(panels)
        assert "ring" in text and "bsa/dls" in text

    def test_figure7_tiny(self, tiny_cache):
        fig = figure7(scale=TINY, cache=tiny_cache)
        assert fig.xs == [5, 20]
        # SL grows with the heterogeneity range for both algorithms
        for series in fig.series.values():
            assert series[1] > series[0]

    def test_runtime_study_tiny(self, tiny_cache):
        fig = runtime_study(scale=TINY, cache=tiny_cache)
        assert all(v >= 0 for vals in fig.series.values() for v in vals)
        assert "runtime" in render_figure(fig).lower() or fig.xs == [20]

    def test_cache_shared_between_figures(self, tiny_cache):
        figure3(scale=TINY, cache=tiny_cache)
        n_after_fig3 = len(tiny_cache)
        # figure5 aggregates the same cells: no new runs
        from repro.experiments.figures import figure5

        figure5(scale=TINY, cache=tiny_cache)
        assert len(tiny_cache) == n_after_fig3


class TestAllAlgorithmsOneWorkload:
    """Every scheduler, one platform — metrics coherent across the board."""

    @pytest.fixture(scope="class")
    def system(self):
        graph = regular_graph("gauss", 50, granularity=1.0, seed=5)
        return HeterogeneousSystem.sample(
            graph, hypercube(8), het_range=(1, 20), seed=5
        )

    @pytest.mark.parametrize("scheduler", [
        schedule_bsa,
        schedule_dls,
        lambda s: schedule_dls(s, DLSOptions(link_insertion=True)),
        lambda s: schedule_dls(s, DLSOptions(routing_strategy="ecube")),
        schedule_heft,
        schedule_cpop,
        schedule_serial,
    ], ids=["bsa", "dls", "dls-ins", "dls-ecube", "heft", "cpop", "serial"])
    def test_valid_and_bounded(self, system, scheduler):
        sched = scheduler(system)
        validate_schedule(sched)
        m = compute_metrics(sched)
        assert m.schedule_length >= m.cp_exec_lower_bound - 1e-9
        assert m.schedule_length <= m.serial_best * 4  # sanity ceiling

    def test_bsa_competitive(self, system):
        bsa = schedule_bsa(system).schedule_length()
        dls = schedule_dls(system).schedule_length()
        serial = schedule_serial(system).schedule_length()
        assert bsa < serial
        assert bsa <= dls * 1.3  # BSA within 30% of DLS at worst, usually ahead

    def test_dls_ecube_routes_are_dimension_ordered(self, system):
        sched = schedule_dls(system, DLSOptions(routing_strategy="ecube"))
        for edge, route in sched.routes.items():
            if route.is_local:
                continue
            procs = route.procs
            # each hop flips exactly one bit, in increasing bit order
            bits = [(a ^ b).bit_length() - 1 for a, b in zip(procs, procs[1:])]
            assert bits == sorted(bits)
            assert all((a ^ b).bit_count() == 1 for a, b in zip(procs, procs[1:]))
