"""Unit tests for the TaskGraph model."""

import pytest

from repro import TaskGraph
from repro.errors import CycleError, GraphError


class TestConstruction:
    def test_add_task_and_edge(self, diamond):
        assert diamond.n_tasks == 4
        assert diamond.n_edges == 4
        assert diamond.cost("b") == 20.0
        assert diamond.comm_cost("a", "c") == 15.0

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(GraphError):
            g.add_task("a", 2.0)

    def test_nonpositive_cost_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("a", 0.0)
        with pytest.raises(GraphError):
            g.add_task("b", -1.0)

    def test_edge_unknown_endpoint_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "missing", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("missing", "a", 1.0)

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "a", 1.0)

    def test_duplicate_edge_rejected(self, chain3):
        with pytest.raises(GraphError):
            chain3.add_edge("x", "y", 9.0)

    def test_negative_comm_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "b", -3.0)

    def test_zero_comm_allowed(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_edge("a", "b", 0.0)
        assert g.comm_cost("a", "b") == 0.0

    def test_cost_update(self, chain3):
        chain3.set_task_cost("x", 99.0)
        assert chain3.cost("x") == 99.0
        chain3.set_edge_cost("x", "y", 42.0)
        assert chain3.comm_cost("x", "y") == 42.0

    def test_cost_update_unknown_rejected(self, chain3):
        with pytest.raises(GraphError):
            chain3.set_task_cost("nope", 1.0)
        with pytest.raises(GraphError):
            chain3.set_edge_cost("x", "z", 1.0)


class TestQueries:
    def test_neighbors(self, diamond):
        assert diamond.successors("a") == ["b", "c"]
        assert diamond.predecessors("d") == ["b", "c"]
        assert diamond.in_degree("a") == 0
        assert diamond.out_degree("a") == 2

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["a"]
        assert diamond.sinks() == ["d"]

    def test_totals(self, diamond):
        assert diamond.total_exec_cost() == 70.0
        assert diamond.total_comm_cost() == 50.0
        assert diamond.mean_exec_cost() == 17.5
        assert diamond.mean_comm_cost() == 12.5

    def test_contains_iter_len(self, chain3):
        assert "x" in chain3
        assert "nope" not in chain3
        assert list(chain3) == ["x", "y", "z"]
        assert len(chain3) == 3

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.descendants("a") == {"b", "c", "d"}
        assert diamond.ancestors("a") == set()

    def test_independent(self, diamond):
        assert diamond.independent("b", "c")
        assert not diamond.independent("a", "d")
        assert not diamond.independent("a", "a")


class TestOrdering:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert diamond.is_topological(order)
        assert order[0] == "a" and order[-1] == "d"

    def test_is_topological_rejects_wrong_order(self, diamond):
        assert not diamond.is_topological(["d", "a", "b", "c"])
        assert not diamond.is_topological(["a", "b", "c"])  # incomplete
        assert not diamond.is_topological(["a", "a", "b", "c"])  # duplicate

    def test_cycle_detected(self):
        g = TaskGraph()
        for t in "abc":
            g.add_task(t, 1.0)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "c", 0)
        # no API to create a cycle via add_edge forward check, so build one
        g._succ["c"]["a"] = 0.0
        g._pred["a"]["c"] = 0.0
        with pytest.raises(CycleError):
            g.topological_order()

    def test_copy_independent(self, diamond):
        dup = diamond.copy()
        dup.set_task_cost("a", 999.0)
        assert diamond.cost("a") == 10.0
        assert dup.n_edges == diamond.n_edges
