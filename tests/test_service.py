"""The service core and ``repro serve``.

The contract under test, in order of importance:

1. **byte-identity** — for the same request, ``POST /schedule``'s body
   equals the file ``repro schedule --export-bundle`` writes, byte for
   byte, under every ``REPRO_HOTPATH`` engine mode;
2. **idempotency** — repeating a request is a cache hit
   (``X-Repro-Cache: hit``) that serves the identical artifact, and the
   entry carries a ``{repro_version, engine_mode, request_key}``
   provenance stamp whose staleness rules are enforced;
3. **structured errors** — every malformed request maps through the
   error table to a stable ``{error, kind, detail}`` payload with the
   table's HTTP status (and, at the CLI, the table's exit code).
"""

import http.client
import json
import threading
import time

import pytest

import repro.experiments.cache as cache_mod
from repro import __version__
from repro.errors import (
    ConfigurationError,
    CycleError,
    DisconnectedGraphError,
    InvalidScheduleError,
    ReproError,
    RoutingError,
    SchedulingError,
    TopologyError,
)
from repro.experiments.cache import (
    PROVENANCE_KEY,
    ResultCache,
    is_stale,
    provenance_of,
    stamp_provenance,
)
from repro.service import (
    ERROR_TABLE,
    ConvertRequest,
    ParetoRequest,
    ScheduleRequest,
    SimulateRequest,
    SweepRequest,
    error_payload,
    error_spec,
    execute,
    exit_code_for,
    http_status_for,
    request_from_dict,
)
from repro.service.http import make_server
from repro.util.intervals import HOTPATH_MODES, hotpath_mode, set_hotpath_mode

DISCONNECTED_STG = """\
6
0 0 0
1 10 1 0
2 20 1 1
3 30 1 0
4 40 1 3
5 0 2 2 4
"""

CONNECTED_STG = """\
5
0 0 0
1 10 1 0
2 20 1 1
3 30 1 1
4 0 2 2 3
"""


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """Point the process-default ResultCache at a private directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(cache_mod, "_default_cache", None)
    yield
    cache_mod._default_cache = None


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture()
def server(fresh_cache):
    srv = make_server(quiet=True)
    _serve(srv)
    yield srv
    srv.shutdown()
    srv.server_close()


def _request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = None
        if body is not None:
            payload = json.dumps(body).encode() if isinstance(body, dict) else body
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# requests: validation, round-trips, idempotency keys
# ----------------------------------------------------------------------

class TestRequests:
    def test_schedule_round_trip(self):
        req = ScheduleRequest(workload="gauss", size=18, topology="ring",
                              n_procs=4, algorithm="heft", seed=3)
        again = ScheduleRequest.from_json(req.to_json())
        assert again == req
        assert request_from_dict(req.to_dict()) == req

    def test_all_types_round_trip(self):
        for req in (
            ScheduleRequest(),
            ConvertRequest(graph=CONNECTED_STG, to_fmt="dot"),
            SweepRequest(sizes=(20, 30)),
            SimulateRequest(workload="gauss", size=18),
            ParetoRequest(size=20, algorithms=("bsa", "heft"),
                          objectives=("energy", "makespan")),
        ):
            assert request_from_dict(json.loads(req.to_json())) == req

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ScheduleRequest.from_dict({"workloadd": "gauss"})

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="algorithm"):
            ScheduleRequest(algorithm="magic").validate()

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigurationError):
            ScheduleRequest(size=True).validate()

    def test_non_positive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleRequest(size=0).validate()

    def test_wrong_typed_request_tag(self):
        with pytest.raises(ConfigurationError, match="type"):
            request_from_dict({"type": "frobnicate"})

    def test_generated_key_is_readable(self):
        req = ScheduleRequest(workload="gauss", size=30, topology="ring",
                              n_procs=4, algorithm="heft")
        assert req.idempotency_key() == \
            "schedule/gauss/n30/g1/ring4/dxhalf/bw1/heft/s0"

    def test_inline_graph_key_is_content_addressed(self):
        a = ScheduleRequest(graph=CONNECTED_STG)
        b = ScheduleRequest(graph=CONNECTED_STG)
        c = ScheduleRequest(graph=CONNECTED_STG + "\n# comment\n")
        assert a.idempotency_key() == b.idempotency_key()
        assert a.idempotency_key() != c.idempotency_key()
        assert "#" in a.graph_token()

    def test_overlay_changes_the_key(self):
        base = ScheduleRequest(graph=CONNECTED_STG)
        ccr = ScheduleRequest(graph=CONNECTED_STG, overlay="ccr2")
        assert base.idempotency_key() != ccr.idempotency_key()

    def test_seed_changes_the_key(self):
        assert ScheduleRequest(seed=0).idempotency_key() != \
            ScheduleRequest(seed=1).idempotency_key()

    def test_sweep_key_counts_cells(self):
        req = SweepRequest(sizes=(20, 30), algorithms=("bsa", "dls"))
        key = req.idempotency_key()
        assert key.startswith("sweep/#")
        assert key.endswith("/4cells")
        assert len(req.expand()) == 4

    def test_simulate_key_has_scenario(self):
        req = SimulateRequest(workload="gauss", size=18, scenario="f2a1s1")
        assert req.idempotency_key().endswith("/scf2a1s1")


# ----------------------------------------------------------------------
# error table
# ----------------------------------------------------------------------

class TestErrorTable:
    def test_every_repro_error_has_a_row(self):
        assert ReproError in ERROR_TABLE
        for exc_type in ERROR_TABLE:
            assert issubclass(exc_type, (ReproError, OSError))

    def test_kinds_and_exit_codes_are_distinct(self):
        kinds = [spec.kind for spec in ERROR_TABLE.values()]
        codes = [spec.exit_code for spec in ERROR_TABLE.values()]
        assert len(set(kinds)) == len(kinds)
        assert len(set(codes)) == len(codes)
        assert 0 not in codes  # success is never an error

    def test_mro_walk_finds_most_specific_row(self):
        assert error_spec(CycleError("loop")).kind == "cycle"
        assert error_spec(DisconnectedGraphError("x")).kind == "disconnected"
        assert exit_code_for(TopologyError("x")) == 7
        assert http_status_for(RoutingError("x")) == 422
        assert http_status_for(SchedulingError("x")) == 422
        assert http_status_for(ConfigurationError("x")) == 400

    def test_unknown_exception_falls_back_to_internal(self):
        spec = error_spec(RuntimeError("boom"))
        assert spec.kind == "internal"
        assert spec.exit_code == 70
        assert spec.http_status == 500

    def test_payload_shape(self):
        payload = error_payload(ConfigurationError("bad flag"))
        assert payload == {"error": "ConfigurationError",
                           "kind": "configuration", "detail": "bad flag"}

    def test_payload_carries_violations(self):
        exc = InvalidScheduleError(["task 3 overlaps task 4"])
        payload = error_payload(exc)
        assert payload["kind"] == "invalid-schedule"
        assert payload["violations"] == ["task 3 overlaps task 4"]


# ----------------------------------------------------------------------
# pipeline: cache hits, staleness, provenance
# ----------------------------------------------------------------------

class TestPipeline:
    REQ = ScheduleRequest(workload="gauss", size=18, topology="ring",
                          n_procs=4, algorithm="heft")

    def test_miss_then_hit_same_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        first = execute(self.REQ, cache=cache)
        second = execute(self.REQ, cache=cache)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert first.bundle_text == second.bundle_text
        assert first.summary == second.summary

    def test_provenance_stamp(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        resp = execute(self.REQ, cache=cache)
        prov = provenance_of(cache.get(resp.request_key))
        assert prov == {
            "repro_version": __version__,
            "engine_mode": hotpath_mode(),
            "request_key": resp.request_key,
        }
        assert resp.provenance == prov

    def test_stale_version_recomputes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        resp = execute(self.REQ, cache=cache)
        key = resp.request_key
        entry = cache.get(key)
        entry[PROVENANCE_KEY]["repro_version"] = "0.0.1"
        cache.put(key, entry)
        assert is_stale(cache.get(key), key)
        again = execute(self.REQ, cache=cache)
        assert again.cache == "miss"  # stale entries never served
        assert not is_stale(cache.get(key), key)  # re-stamped on recompute

    def test_foreign_request_key_is_stale(self):
        entry = stamp_provenance({"summary": {}, "bundle": ""}, "schedule/a")
        assert is_stale(entry, "schedule/b")
        assert not is_stale(entry, "schedule/a")

    def test_unstamped_entry_is_grandfathered(self):
        assert not is_stale({"summary": {}, "bundle": ""}, "schedule/a")

    def test_engine_mode_is_not_a_staleness_criterion(self, tmp_path):
        # schedules are byte-identical across modes by contract, so a
        # bundle cached under one mode is served under all of them
        cache = ResultCache(str(tmp_path / "c.json"))
        initial = hotpath_mode()
        try:
            set_hotpath_mode("legacy")
            first = execute(self.REQ, cache=cache)
            set_hotpath_mode("fast")
            second = execute(self.REQ, cache=cache)
        finally:
            set_hotpath_mode(initial)
        assert (first.cache, second.cache) == ("miss", "hit")

    def test_want_schedule_bypasses_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        execute(self.REQ, cache=cache)
        live = execute(self.REQ, cache=cache, want_schedule=True)
        assert live.cache == "miss"
        assert live.extra["schedule"].schedule_length() == \
            live.summary["schedule_length"]

    def test_no_cache_mode(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        resp = execute(self.REQ, cache=cache, use_cache=False)
        assert resp.cache == "off"
        assert cache.get(resp.request_key) is None

    def test_convert_inline(self):
        resp = execute(ConvertRequest(graph=CONNECTED_STG, to_fmt="dot"))
        assert resp.summary["from"] == "stg"
        assert resp.summary["to"] == "dot"
        assert "digraph" in resp.extra["output"]

    def test_simulate(self):
        resp = execute(SimulateRequest(workload="gauss", size=18,
                                       topology="ring", n_procs=4,
                                       scenario="f1a1s0"))
        assert resp.summary["n_events"] >= 1
        assert resp.summary["final_sl"] > 0


# ----------------------------------------------------------------------
# byte-identity: service == CLI, across every engine mode
# ----------------------------------------------------------------------

class TestByteIdentity:
    PAYLOAD = {"workload": "gauss", "size": 18, "topology": "ring",
               "n_procs": 4, "algorithm": "bsa", "seed": 1}

    def _cli_bundle(self, tmp_path, tag):
        from repro.cli import main

        out = tmp_path / f"bundle-{tag}.json"
        rc = main(["schedule", "-w", "gauss", "-n", "18", "-t", "ring",
                   "-p", "4", "-a", "bsa", "--seed", "1",
                   "--export-bundle", str(out)])
        assert rc == 0
        return out.read_bytes()

    def test_post_schedule_matches_cli_bundle_every_mode(
            self, server, tmp_path, capsys):
        initial = hotpath_mode()
        bodies = {}
        try:
            for mode in HOTPATH_MODES:
                set_hotpath_mode(mode)
                status, headers, body = _request(
                    server, "POST", "/schedule", self.PAYLOAD)
                assert status == 200
                assert body == self._cli_bundle(tmp_path, mode)
                bodies[mode] = body
        finally:
            set_hotpath_mode(initial)
        assert len(set(bodies.values())) == 1  # and identical across modes

    def test_repeat_request_is_a_cache_hit(self, server):
        status1, headers1, body1 = _request(
            server, "POST", "/schedule", self.PAYLOAD)
        status2, headers2, body2 = _request(
            server, "POST", "/schedule", self.PAYLOAD)
        assert (status1, status2) == (200, 200)
        assert headers1["X-Repro-Cache"] == "miss"
        assert headers2["X-Repro-Cache"] == "hit"
        assert body1 == body2
        assert headers1["X-Repro-Request-Key"] == \
            headers2["X-Repro-Request-Key"]

    def test_bundle_replays(self, server, tmp_path, capsys):
        from repro.cli import main

        _, _, body = _request(server, "POST", "/schedule", self.PAYLOAD)
        path = tmp_path / "served.json"
        path.write_bytes(body)
        assert main(["replay", str(path)]) == 0
        assert "replay OK" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Pareto sweeps over the service (PR 9)
# ----------------------------------------------------------------------

class TestPareto:
    PAYLOAD = {"workload": "gauss", "size": 20, "topology": "ring",
               "n_procs": 4, "seed": 1, "algorithms": ["bsa", "heft"],
               "objectives": ["makespan", "energy"]}

    def _cli_stdout(self, capsys):
        from repro.cli import main

        rc = main(["pareto", "-w", "gauss", "-n", "20", "-t", "ring",
                   "-p", "4", "--seed", "1", "-a", "bsa", "heft",
                   "-O", "makespan", "energy"])
        assert rc == 0
        return capsys.readouterr().out.encode("utf-8")

    def test_http_body_matches_cli_stdout(self, server, capsys):
        status, headers, body = _request(server, "POST", "/pareto",
                                         self.PAYLOAD)
        assert status == 200
        assert "X-Repro-Request-Key" in headers
        doc = json.loads(body)
        assert doc["format"] == "repro-pareto"
        assert doc["objectives"] == ["makespan", "energy"]
        assert body == self._cli_stdout(capsys)

    def test_repeat_is_cache_hit_same_bytes(self, server):
        _, headers1, body1 = _request(server, "POST", "/pareto", self.PAYLOAD)
        _, headers2, body2 = _request(server, "POST", "/pareto", self.PAYLOAD)
        assert headers1["X-Repro-Cache"] == "miss"
        assert headers2["X-Repro-Cache"] == "hit"
        assert body1 == body2

    def test_front_is_sane(self, server):
        _, _, body = _request(server, "POST", "/pareto", self.PAYLOAD)
        doc = json.loads(body)
        labels = [p["algorithm"] for p in doc["points"]]
        assert labels == ["bsa", "heft"]
        assert doc["front"]
        assert set(doc["front"]) <= set(labels)
        for point in doc["points"]:
            assert point["on_front"] == (point["algorithm"] in doc["front"])
            # sort_keys=True serialization alphabetizes the value dicts
            assert set(point["values"]) == {"makespan", "energy"}

    def test_objectives_spelling_canonicalizes_in_key(self):
        a = ParetoRequest(objectives=("throughput", "energy"))
        b = ParetoRequest(objectives=("energy", "throughput"))
        assert a.idempotency_key() == b.idempotency_key()
        # algorithm order IS the artifact's point order: it stays visible
        c = ParetoRequest(algorithms=("heft", "bsa"))
        d = ParetoRequest(algorithms=("bsa", "heft"))
        assert c.idempotency_key() != d.idempotency_key()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoRequest(algorithms=("bsa", "bsa")).validate()
        with pytest.raises(ConfigurationError):
            ParetoRequest(objectives=("makespan",)).validate()
        with pytest.raises(ConfigurationError):
            ParetoRequest(algorithms=("nope",)).validate()
        with pytest.raises(ConfigurationError):
            ParetoRequest(size=0).validate()
        ParetoRequest().validate()  # all-defaults request is well-formed


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------

class TestHttp:
    def test_health(self, server):
        status, _, body = _request(server, "GET", "/health")
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["version"] == __version__

    def test_version_lists_registries(self, server):
        status, _, body = _request(server, "GET", "/version")
        doc = json.loads(body)
        assert status == 200
        assert "bsa" in doc["algorithms"]
        assert "stg" in doc["formats"]
        assert "hypercube" in doc["topologies"]

    def test_unknown_endpoint_is_structured_404(self, server):
        status, _, body = _request(server, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["kind"] == "not-found"

    def test_empty_body_is_400(self, server):
        status, _, body = _request(server, "POST", "/schedule")
        assert status == 400
        assert json.loads(body)["kind"] == "configuration"

    def test_non_json_body_is_400(self, server):
        status, _, body = _request(server, "POST", "/schedule", b"not json")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["detail"]

    def test_unknown_field_is_400(self, server):
        status, _, body = _request(server, "POST", "/schedule",
                                   {"workloadd": "gauss"})
        assert status == 400
        assert json.loads(body)["kind"] == "configuration"

    def test_disconnected_graph_is_structured_400(self, server):
        status, _, body = _request(server, "POST", "/schedule",
                                   {"graph": DISCONNECTED_STG,
                                    "topology": "ring", "n_procs": 4})
        doc = json.loads(body)
        assert status == 400
        assert doc["kind"] == "disconnected"
        assert "bridge" in doc["detail"]

    def test_bridge_epsilon_repairs_over_http(self, server):
        status, _, _ = _request(server, "POST", "/schedule",
                                {"graph": DISCONNECTED_STG, "bridge": "epsilon",
                                 "topology": "ring", "n_procs": 4})
        assert status == 200

    def test_server_side_files_rejected(self, server):
        status, _, body = _request(server, "POST", "/schedule",
                                   {"graph_path": "/etc/hostname"})
        assert status == 400
        assert "server-side files" in json.loads(body)["detail"]
        status, _, body = _request(server, "POST", "/convert",
                                   {"src": "/etc/hostname", "dst": "/tmp/x"})
        assert status == 400

    def test_convert_inline(self, server):
        status, headers, body = _request(
            server, "POST", "/convert",
            {"graph": CONNECTED_STG, "to_fmt": "dot"})
        assert status == 200
        assert headers["X-Repro-From"] == "stg"
        assert headers["X-Repro-To"] == "dot"
        assert b"digraph" in body

    def test_sync_sweep(self, server):
        status, headers, body = _request(
            server, "POST", "/sweep",
            {"sizes": [18], "topologies": ["ring"], "n_procs": 4,
             "algorithms": ["heft"]})
        doc = json.loads(body)
        assert status == 200
        assert doc["summary"]["report"]["computed"] == 1
        assert doc["provenance"]["repro_version"] == __version__

    def test_async_sweep_polls_to_done(self, server):
        server.async_threshold = 0  # force the async path
        payload = {"sizes": [18, 20], "topologies": ["ring"], "n_procs": 4,
                   "algorithms": ["heft", "dls"]}
        status, _, body = _request(server, "POST", "/sweep", payload)
        doc = json.loads(body)
        assert status == 202
        assert doc["n_cells"] == 4
        job_id = doc["job_id"]
        deadline = time.time() + 120
        while True:
            status, _, body = _request(server, "GET", doc["poll"])
            assert status == 200
            job = json.loads(body)
            if job["status"] in ("done", "failed"):
                break
            assert time.time() < deadline, "job never finished"
            time.sleep(0.1)
        assert job["status"] == "done"
        assert job["id"] == job_id
        report = job["result"]["summary"]["report"]
        assert report["total"] == 4
        assert not report["failures"]
        assert job["result"]["provenance"]["request_key"] == \
            job["request_key"]

    def test_job_not_found(self, server):
        status, _, body = _request(server, "GET", "/jobs/job-9999")
        assert status == 404


class TestAuth:
    @pytest.fixture()
    def gated(self, fresh_cache):
        srv = make_server(api_key="sesame", quiet=True)
        _serve(srv)
        yield srv
        srv.shutdown()
        srv.server_close()

    def test_health_is_never_gated(self, gated):
        status, _, _ = _request(gated, "GET", "/health")
        assert status == 200

    def test_missing_key_is_401(self, gated):
        status, _, body = _request(gated, "GET", "/version")
        assert status == 401
        assert json.loads(body)["kind"] == "auth"
        status, _, _ = _request(gated, "POST", "/schedule",
                                {"workload": "gauss", "size": 18})
        assert status == 401

    def test_wrong_key_is_401(self, gated):
        status, _, _ = _request(gated, "GET", "/version",
                                headers={"X-API-Key": "guess"})
        assert status == 401

    def test_right_key_admits(self, gated):
        status, _, _ = _request(gated, "GET", "/version",
                                headers={"X-API-Key": "sesame"})
        assert status == 200


# ----------------------------------------------------------------------
# CLI integration: --json payloads, serve subcommand wiring
# ----------------------------------------------------------------------

class TestCliErrors:
    def test_json_error_payload(self, capsys):
        from repro.cli import main

        rc = main(["--json", "schedule", "--graph", "/nonexistent/g.stg"])
        assert rc == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "io"
        assert "detail" in doc

    def test_json_disconnected_kind(self, capsys, tmp_path):
        from repro.cli import main

        f = tmp_path / "g.stg"
        f.write_text(DISCONNECTED_STG)
        rc = main(["--json", "schedule", "--graph", str(f),
                   "-t", "ring", "-p", "4"])
        assert rc == 6
        assert json.loads(capsys.readouterr().out)["kind"] == "disconnected"

    def test_cli_schedule_uses_service_cache(self, fresh_cache, capsys):
        # the CLI and the service share one pipeline, so a CLI run warms
        # the cache the server reads from (and vice versa)
        from repro.cli import main

        req = ScheduleRequest(workload="gauss", size=18, topology="ring",
                              n_procs=4, algorithm="heft")
        assert main(["schedule", "-w", "gauss", "-n", "18", "-t", "ring",
                     "-p", "4", "-a", "heft"]) == 0
        capsys.readouterr()
        resp = execute(req)
        assert resp.cache == "hit"
