"""Documentation-sync tests: the docs must match the live registries.

PR 4's documentation sweep fixed README flag lists that had drifted
from the CLI (``--algorithm`` omitted ``etf``). These tests make that
class of rot impossible: README flag lists, the CLI parser choices, and
the library registries must all agree, ARCHITECTURE.md must exist and
cover every layer, and the bundled corpus EXPERIMENTS.md §7 describes
must actually ship.
"""

import os
import re

from repro.cli import build_parser
from repro.experiments.config import ALGORITHM_NAMES, TOPOLOGY_NAMES
from repro.experiments.runner import _SCHEDULERS, build_topology
from repro.graph.interchange import format_names

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(name):
    with open(os.path.join(REPO_ROOT, name)) as fh:
        return fh.read()


def _subparsers(parser):
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            return action.choices
    raise AssertionError("no subparsers found")


def _flag_choices(subparser, flag):
    for action in subparser._actions:
        if flag in action.option_strings:
            return list(action.choices)
    raise AssertionError(f"flag {flag} not found")


def _readme_flag_list(readme, flag):
    m = re.search(re.escape(flag) + r" \{([a-z0-9_,]+)\}", readme)
    assert m, f"README does not document {flag} {{...}} choices"
    return m.group(1).split(",")


class TestRegistriesAgree:
    def test_algorithm_names_match_scheduler_registry(self):
        plain = [name for name in _SCHEDULERS if "-" not in name]
        assert plain == list(ALGORITHM_NAMES)

    def test_topology_names_all_buildable(self):
        for name in TOPOLOGY_NAMES:
            topology = build_topology(name, 16, seed=0)
            assert topology.n_procs == 16

    def test_cli_choices_come_from_registries(self):
        sub = _subparsers(build_parser())
        assert _flag_choices(sub["schedule"], "--algorithm") == list(ALGORITHM_NAMES)
        assert _flag_choices(sub["schedule"], "--topology") == list(TOPOLOGY_NAMES)
        assert _flag_choices(sub["schedule"], "--format") == list(format_names())
        assert _flag_choices(sub["ablation"], "--topology") == list(TOPOLOGY_NAMES)
        assert _flag_choices(sub["convert"], "--from") == list(format_names())
        assert _flag_choices(sub["convert"], "--to") == list(format_names())
        assert _flag_choices(sub["simulate"], "--algorithm") == list(ALGORITHM_NAMES)
        assert _flag_choices(sub["simulate"], "--topology") == list(TOPOLOGY_NAMES)

    def test_corpus_cli_choices_come_from_registries(self):
        corpus = _subparsers(build_parser())["corpus"]
        commands = _subparsers(corpus)
        assert list(commands) == ["scan", "ls", "bench", "report"]
        for name in ("bench", "report"):
            assert _flag_choices(commands[name], "--topologies") == list(
                TOPOLOGY_NAMES
            )
            assert _flag_choices(commands[name], "--algorithms") == list(
                ALGORITHM_NAMES
            )


class TestReadme:
    def test_readme_flag_lists_match_cli(self):
        readme = _read("README.md")
        assert _readme_flag_list(readme, "--algorithm") == list(ALGORITHM_NAMES)
        assert _readme_flag_list(readme, "--topology") == list(TOPOLOGY_NAMES)
        assert _readme_flag_list(readme, "--format") == list(format_names())
        assert _readme_flag_list(readme, "--duplex") == ["half", "full"]

    def test_readme_documents_every_subcommand(self):
        readme = _read("README.md")
        for command in _subparsers(build_parser()):
            assert f"`repro {command}" in readme, (
                f"README does not document the `repro {command}` subcommand"
            )

    def test_readme_links_architecture_and_experiments(self):
        readme = _read("README.md")
        assert "ARCHITECTURE.md" in readme
        assert "EXPERIMENTS.md" in readme

    def test_readme_formats_table_lists_every_registered_format(self):
        readme = _read("README.md")
        for name in format_names():
            assert f"| `{name}` |" in readme, (
                f"README formats table does not list {name!r}"
            )

    def test_readme_error_table_matches_error_registry(self):
        """The README error-code table is generated from
        repro.service.errors.ERROR_TABLE — both are committed, so every
        row (class, kind, exit code, HTTP status) must agree, and every
        table entry must have a README row."""
        from repro.service.errors import ERROR_TABLE

        readme = _read("README.md")
        for exc_type, spec in ERROR_TABLE.items():
            row = (f"| `{exc_type.__name__}` | `{spec.kind}` "
                   f"| {spec.exit_code} | {spec.http_status} |")
            assert row in readme, (
                f"README error table does not match ERROR_TABLE for "
                f"{exc_type.__name__}: expected {row!r}"
            )

    def test_readme_documents_the_fallback_exit_code(self):
        readme = _read("README.md")
        assert "70" in readme  # the kind="internal" fallback


class TestArchitecture:
    def test_architecture_exists_and_covers_every_layer(self):
        text = _read("ARCHITECTURE.md")
        src = os.path.join(REPO_ROOT, "src", "repro")
        packages = sorted(
            name for name in os.listdir(src)
            if os.path.isdir(os.path.join(src, name)) and name != "__pycache__"
        )
        assert packages, "no packages under src/repro?"
        for package in packages:
            assert f"{package}/" in text, (
                f"ARCHITECTURE.md module map does not mention {package}/"
            )

    def test_architecture_documents_engine_modes(self):
        text = _read("ARCHITECTURE.md")
        for mode in ("incremental", "fast", "legacy", "array"):
            assert f"`{mode}`" in text
        assert "REPRO_HOTPATH" in text
        assert "byte identity" in text.lower().replace("-", " ")

    def test_architecture_documents_interchange_and_substrate(self):
        text = _read("ARCHITECTURE.md")
        for needle in ("interchange", "LinkSpec", "channel", "sniff"):
            assert needle in text, f"ARCHITECTURE.md lacks {needle!r}"


class TestExperimentsSection7:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 7. External workloads" in text
        assert "examples/external_workloads.py" in text
        assert "repro schedule --graph" in text

    def test_documented_corpus_files_ship(self):
        text = _read("EXPERIMENTS.md")
        section = text.split("## 7.")[1].split("## 8.")[0]
        for name in re.findall(r"`([\w./]+\.(?:stg|dot|json))`", section):
            base = os.path.basename(name)
            if base.startswith("forkjoin.trace"):
                continue  # /tmp output of a documented command
            assert os.path.exists(
                os.path.join(REPO_ROOT, "examples", "graphs", base)
            ), f"EXPERIMENTS §7 mentions {base} but it is not bundled"


class TestExperimentsSection8:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 8. Corpus-scale benchmarking" in text
        assert "repro corpus bench" in text
        assert "examples/corpus_bench.py" in text

    def test_documented_corpus_files_ship(self):
        text = _read("EXPERIMENTS.md")
        section = text.split("## 8.")[1].split("## 9.")[0]
        for name in re.findall(r"`([\w./]+\.(?:stg|dot|json|dax))`", section):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "examples", "corpus",
                             os.path.basename(name))
            ), f"EXPERIMENTS §8 mentions {name} but it is not bundled"

    def test_bundled_corpus_is_what_section_8_claims(self):
        from repro.corpus.manifest import scan_corpus

        manifest = scan_corpus(os.path.join(REPO_ROOT, "examples", "corpus"))
        formats = {e.fmt for e in manifest.entries}
        # the mini-corpus must keep covering the two new importers, the
        # dummy-bridged STG repair path, and the vector-trace path
        assert {"dax", "wfcommons", "stg", "trace"} <= formats
        assert any(e.needs_bridge for e in manifest.entries)
        assert any(e.n_procs for e in manifest.entries)


class TestExperimentsSection9:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 9. Online rescheduling" in text
        assert "repro simulate" in text
        assert "bench_dynamic" in text

    def test_repair_vs_replan_table_matches_bench(self):
        """The §9 table is generated from BENCH_dynamic.json — both
        artifacts are committed, so they must agree."""
        import json

        report = json.load(
            open(os.path.join(REPO_ROOT, "BENCH_dynamic.json"))
        )
        section = _read("EXPERIMENTS.md").split("## 9.")[1].split("## 10.")[0]
        assert str(report["repair_speedup"]) in section
        for s in report["scenarios"]:
            assert s["scenario"] in section, (
                f"BENCH_dynamic.json scenario {s['scenario']} missing "
                f"from the EXPERIMENTS §9 table"
            )


class TestExperimentsSection10:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 10. Array engine scaling" in text
        assert "REPRO_HOTPATH=array" in text
        assert "bench_hotpath.py" in text.split("## 10.")[1]

    def test_scaling_curve_table_matches_bench(self):
        """The §10 scaling-curve table is generated from the
        scaling_curve section of BENCH_hotpath.json — both artifacts
        are committed, so every point (size, timings, speedup) must
        agree, and the documented floor must be the bench's floor."""
        import json

        report = json.load(
            open(os.path.join(REPO_ROOT, "BENCH_hotpath.json"))
        )
        curve = report["scaling_curve"]
        assert curve["floor_ok"], "committed bench violates its own floor"
        section = _read("EXPERIMENTS.md").split("## 10.")[1]
        for p in curve["points"]:
            row = (f"| {p['n_tasks']} | {p['incremental_s']} s "
                   f"| {p['array_s']} s | {p['speedup_array']}x | yes |")
            # normalize column padding: compare without repeated spaces
            squashed = " ".join(section.split())
            assert " ".join(row.split()) in squashed, (
                f"EXPERIMENTS §10 table row for n={p['n_tasks']} does "
                f"not match BENCH_hotpath.json: expected {row!r}"
            )
            assert p["identical"], p

    def test_golden_cell_pin_matches_equivalence_suite(self):
        """§10 cites the n=1000 pinned makespan; it must be the same
        float the equivalence suite enforces."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "hotpath_equiv",
            os.path.join(REPO_ROOT, "tests", "test_hotpath_equivalence.py"),
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        section = _read("EXPERIMENTS.md").split("## 10.")[1]
        assert repr(mod.PINNED_N1000) in section

class TestExperimentsSection11:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 11. Scheduling as a service" in text
        section = text.split("## 11.")[1]
        assert "bench_serve.py" in section
        assert "tests/test_service.py" in section

    def test_latency_table_matches_bench(self):
        """The §11 latency table is generated from BENCH_serve.json —
        both artifacts are committed, so every row (case, p50 cold/warm,
        req/s, speedup) must agree."""
        import json

        report = json.load(
            open(os.path.join(REPO_ROOT, "BENCH_serve.json"))
        )
        section = _read("EXPERIMENTS.md").split("## 11.")[1]
        squashed = " ".join(section.split())
        for c in report["cases"]:
            row = (f"| {c['case']} | {c['cold']['p50_ms']} ms "
                   f"| {c['cold']['req_per_s']} "
                   f"| {c['warm']['p50_ms']} ms "
                   f"| {c['warm']['req_per_s']} "
                   f"| {c['warm_speedup']}x |")
            assert " ".join(row.split()) in squashed, (
                f"EXPERIMENTS §11 table row for {c['case']} does not "
                f"match BENCH_serve.json: expected {row!r}"
            )


class TestExperimentsSection12:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 12. Multi-objective scheduling" in text
        section = text.split("## 12.")[1]
        assert "bench_pareto.py" in section
        assert "repro pareto" in section
        assert "tests/test_objectives.py" in section

    def test_pareto_table_matches_bench(self):
        """The §12 table is generated from BENCH_pareto.json — both
        artifacts are committed, so every row (per-algorithm objective
        vector and front membership) must agree."""
        import json

        report = json.load(
            open(os.path.join(REPO_ROOT, "BENCH_pareto.json"))
        )
        assert report["jobs_identical"], (
            "committed bench violates its own --jobs byte-identity check"
        )
        section = _read("EXPERIMENTS.md").split("## 12.")[1]
        squashed = " ".join(section.split())
        for p in report["points"]:
            row = (f"| {p['algorithm']} | {p['makespan']} | {p['energy']} "
                   f"| {p['reliability']} | {p['throughput']} "
                   f"| {'yes' if p['on_front'] else 'no'} |")
            assert " ".join(row.split()) in squashed, (
                f"EXPERIMENTS §12 table row for {p['algorithm']} does "
                f"not match BENCH_pareto.json: expected {row!r}"
            )
        for algo in report["front"]:
            assert algo in section

    def test_front_matches_equivalence_suite(self):
        """§12's front must be the same front the golden Pareto pin in
        the equivalence suite enforces."""
        import importlib.util
        import json

        spec = importlib.util.spec_from_file_location(
            "hotpath_equiv",
            os.path.join(REPO_ROOT, "tests", "test_hotpath_equivalence.py"),
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        report = json.load(
            open(os.path.join(REPO_ROOT, "BENCH_pareto.json"))
        )
        assert report["front"] == mod.PINNED_PARETO_FRONT
        assert report["cell"] == mod.CELL_PARETO.key()


class TestReadmeObservability:
    def test_counter_table_matches_registry(self):
        """The README Observability table is generated from
        repro.obs.counters.COUNTERS and the promtext name mapping —
        every registered counter must have an exact row, and no row
        may name an unregistered counter."""
        from repro.obs.counters import COUNTERS
        from repro.obs.promtext import metric_name

        readme = _read("README.md")
        for counter, help_text in COUNTERS.items():
            row = (f"| `{counter}` | `{metric_name(counter)}` "
                   f"| {help_text} |")
            assert row in readme, (
                f"README Observability table does not match the "
                f"registry for {counter}: expected {row!r}"
            )
        for m in re.finditer(r"\| `([a-z]+\.[a-z_]+)` \| `repro_", readme):
            assert m.group(1) in COUNTERS, (
                f"README documents unregistered counter {m.group(1)!r}"
            )

    def test_architecture_covers_obs(self):
        text = _read("ARCHITECTURE.md")
        assert "obs/" in text
        assert "## The observability layer (`obs/`)" in text
        assert "REPRO_OBS" in text


class TestExperimentsSection13:
    def test_section_exists_with_commands(self):
        text = _read("EXPERIMENTS.md")
        assert "## 13. Observability" in text
        section = text.split("## 13.")[1]
        assert "bench_obs.py" in section
        assert "repro profile" in section
        assert "tests/test_obs.py" in section

    def test_counter_table_matches_bench(self):
        """The §13 table is generated from BENCH_obs.json — both are
        committed, so every per-mode counter row must agree."""
        import json

        report = json.load(open(os.path.join(REPO_ROOT, "BENCH_obs.json")))
        assert report["reps_identical"], (
            "committed bench violates its own rep-to-rep identity check"
        )
        assert report["jobs_identical"], (
            "committed bench violates its own --jobs identity check"
        )
        modes = ["legacy", "fast", "incremental", "array"]
        assert set(modes) <= set(report["modes"])
        names = sorted({c for m in modes for c in report["modes"][m]})
        section = _read("EXPERIMENTS.md").split("## 13.")[1]
        squashed = " ".join(section.split())
        for counter in names:
            cells = [str(report["modes"][m].get(counter, "—"))
                     for m in modes]
            row = f"| `{counter}` | " + " | ".join(cells) + " |"
            assert " ".join(row.split()) in squashed, (
                f"EXPERIMENTS §13 row for {counter} does not match "
                f"BENCH_obs.json: expected {row!r}"
            )

    def test_golden_cell_matches_obs_suite(self):
        """§13's incremental column must be the same snapshot the
        golden pin in tests/test_obs.py enforces, on the same cell."""
        import importlib.util
        import json

        spec = importlib.util.spec_from_file_location(
            "obs_tests", os.path.join(REPO_ROOT, "tests", "test_obs.py"),
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        report = json.load(open(os.path.join(REPO_ROOT, "BENCH_obs.json")))
        assert report["modes"]["incremental"] == mod.GOLDEN_INCREMENTAL_N40
        assert report["cell"] == mod._pinned_cell().key()
