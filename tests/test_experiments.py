"""Tests for the experiment harness (cells, cache, figures, reporting)."""

import os

import pytest

from repro.experiments.aggregate import geometric_mean, mean_by
from repro.experiments.cache import CACHE_VERSION, ResultCache
from repro.experiments.config import SCALES, Cell, Scale, current_scale
from repro.experiments.figures import FigureSeries
from repro.experiments.reporting import render_figure, render_improvement_summary
from repro.experiments.runner import CellResult, build_cell_system, build_topology, run_cell
from repro.errors import ConfigurationError


class TestCell:
    def test_key_stable_and_unique(self):
        a = Cell("regular", "gauss", 100, 1.0, "ring", "bsa")
        b = Cell("regular", "gauss", 100, 1.0, "ring", "bsa")
        c = Cell("regular", "gauss", 100, 1.0, "ring", "dls")
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_key_includes_heterogeneity(self):
        a = Cell("random", "random", 100, 1.0, "ring", "bsa", het_hi=50)
        b = Cell("random", "random", 100, 1.0, "ring", "bsa", het_hi=100)
        assert a.key() != b.key()


class TestScale:
    def test_scales_exist(self):
        assert set(SCALES) == {"smoke", "default", "full"}

    def test_full_scale_is_paper_grid(self):
        full = SCALES["full"]
        assert full.sizes == tuple(range(50, 501, 50))
        assert full.granularities == (0.1, 1.0, 10.0)
        assert set(full.topologies) == {"ring", "hypercube", "clique", "random"}
        assert full.het_sweep_sizes == (500,)
        assert full.het_sweep_n_graphs == 10
        assert full.het_ranges == ((1, 10), (1, 50), (1, 100), (1, 200))

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigurationError):
            current_scale()

    def test_current_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "default"


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "r.json"))
        cache.put("k", {"schedule_length": 1.0})
        reloaded = ResultCache(str(tmp_path / "r.json"))
        assert reloaded.get("k") == {"schedule_length": 1.0}
        assert len(reloaded) == 1

    def test_missing_key(self, tmp_path):
        cache = ResultCache(str(tmp_path / "r.json"))
        assert cache.get("nope") is None

    def test_version_mismatch_discards(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text('{"version": -1, "results": {"k": {}}}')
        cache = ResultCache(str(path))
        assert cache.get("k") is None

    def test_corrupt_file_tolerated(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{ not json")
        cache = ResultCache(str(path))
        assert cache.get("k") is None
        cache.put("k", {"a": 1})
        assert ResultCache(str(path)).get("k") == {"a": 1}


class TestRunner:
    def test_build_topology(self):
        assert build_topology("ring", 16).n_links == 16
        assert build_topology("hypercube", 16).n_links == 32
        assert build_topology("clique", 4).n_links == 6
        assert build_topology("random", 8).n_procs == 8
        assert build_topology("torus", 16).n_links == 32      # 4x4, 2 per node
        assert build_topology("fattree", 16).n_links == 15    # tree: m-1 links
        with pytest.raises(ConfigurationError):
            build_topology("moebius", 16)
        # a prime count only factors as 1 x m (structurally a ring) and
        # 2 x 2 is a 4-cycle isomorphic to ring(4): refuse rather than
        # silently alias topologies
        for m in (7, 2, 4):
            with pytest.raises(ConfigurationError):
                build_topology("torus", m)

    def test_build_cell_system(self):
        cell = Cell("random", "random", 30, 1.0, "ring", "bsa", n_procs=4)
        system = build_cell_system(cell)
        assert system.graph.n_tasks == 30
        assert system.topology.n_procs == 4

    def test_run_cell_and_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "r.json"))
        cell = Cell("random", "random", 20, 1.0, "ring", "bsa", n_procs=4)
        r1 = run_cell(cell, cache=cache)
        assert r1.schedule_length > 0
        assert r1.n_tasks == 20
        # second call hits the cache (same values, no recompute)
        r2 = run_cell(cell, cache=cache)
        assert r2 == r1

    def test_run_cell_all_algorithms(self, tmp_path):
        cache = ResultCache(str(tmp_path / "r.json"))
        for algo in ("bsa", "dls", "heft", "cpop"):
            cell = Cell("random", "random", 20, 1.0, "clique", algo, n_procs=4)
            result = run_cell(cell, cache=cache)
            assert result.schedule_length > 0

    def test_unknown_algorithm_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "r.json"))
        cell = Cell("random", "random", 20, 1.0, "ring", "magic", n_procs=4)
        with pytest.raises(ConfigurationError):
            run_cell(cell, cache=cache)

    def test_cell_result_round_trip(self):
        r = CellResult(1.0, 2.0, 3.0, 4.0, 5.0, 6, 7)
        assert CellResult.from_dict(r.to_dict()) == r


class TestAggregation:
    def test_mean_by(self):
        items = [("a", 1.0), ("a", 3.0), ("b", 10.0)]
        means = mean_by(items, key=lambda x: x[0], value=lambda x: x[1])
        assert means == {"a": 2.0, "b": 10.0}

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) != geometric_mean([])  # NaN


class TestReporting:
    def _fig(self):
        return FigureSeries(
            title="demo", x_label="size", xs=[50, 100],
            series={"dls": [100.0, 200.0], "bsa": [80.0, 150.0]},
        )

    def test_render_figure(self):
        out = render_figure(self._fig())
        assert "demo" in out and "bsa/dls" in out

    def test_improvement(self):
        fig = self._fig()
        imp = fig.improvement()
        assert imp[0] == pytest.approx(0.2)
        assert imp[1] == pytest.approx(0.25)

    def test_improvement_summary(self):
        out = render_improvement_summary({"ring": self._fig()})
        assert "ring" in out
        assert "-" in out or "+" in out
