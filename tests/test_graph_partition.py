"""Tests for CP / IB / OB task classification."""

from repro import TaskClass, classify_tasks, critical_path
from repro.experiments.paper_example import build_figure1_graph


class TestClassification:
    def test_diamond(self, diamond):
        cp = critical_path(diamond)  # a, c, d (CP tie broken by exec sum)
        classes = classify_tasks(diamond, cp)
        assert classes["a"] is TaskClass.CP
        assert classes["c"] is TaskClass.CP
        assert classes["d"] is TaskClass.CP
        assert classes["b"] is TaskClass.IB  # ancestor of d, not on CP

    def test_paper_graph_nominal(self):
        g = build_figure1_graph()
        cp = critical_path(g)
        assert cp == ["T1", "T7", "T9"]
        classes = classify_tasks(g, cp)
        cps = {t for t, c in classes.items() if c is TaskClass.CP}
        ibs = {t for t, c in classes.items() if c is TaskClass.IB}
        obs = {t for t, c in classes.items() if c is TaskClass.OB}
        assert cps == {"T1", "T7", "T9"}
        # every other task except T5 feeds the CP
        assert ibs == {"T2", "T3", "T4", "T6", "T8"}
        assert obs == {"T5"}  # the paper: "The only OB task, T5"

    def test_all_tasks_classified(self, diamond):
        classes = classify_tasks(diamond, critical_path(diamond))
        assert set(classes) == set(diamond.tasks())

    def test_ob_has_no_cp_descendants(self, paper_graph):
        cp = critical_path(paper_graph)
        classes = classify_tasks(paper_graph, cp)
        cp_set = set(cp)
        for t, cls in classes.items():
            if cls is TaskClass.OB:
                assert not (paper_graph.descendants(t) & cp_set)
