"""Property suite for the multi-criteria objective layer (PR 9).

Everything here is seeded, in the style of ``test_random_invariants``:
a grid of deterministic (topology, algorithm, seed) cells is scheduled
once per test class and the objective evaluators' *theorems* are
checked against them —

* **energy** strictly increases when any execution cost increases
  (busy power strictly exceeds idle power), and decomposes exactly into
  busy + idle + link terms;
* **reliability** is in ``(0, 1]``, monotone non-increasing in every
  failure rate, and monotone non-decreasing in replication;
* **throughput** (the steady-state period) equals the bottleneck
  resource's busy time and bounds every resource's busy time;
* **Pareto fronts** contain no dominated point and are independent of
  insertion order;
* the **objectives token** canonicalizes through the cache key, so no
  reordering of spellings (alone or composed with the scenario /
  overlay axes) can alias two different ``ResultCache`` entries.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import Cell
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.graph.model import TaskGraph
from repro.network.system import HeterogeneousSystem
from repro.network.topology import ring
from repro.objectives import (
    OBJECTIVE_NAMES,
    OBJECTIVE_SENSES,
    PowerModel,
    ReliabilityModel,
    bottleneck_busy_times,
    dominates,
    evaluate_objectives,
    objectives_token,
    pareto_front,
    parse_objectives,
    schedule_energy,
    schedule_reliability,
    schedule_throughput,
)


def _combos():
    """Seeded (cell, algorithm) grid: 3 topologies x 4 schedulers."""
    combos = []
    i = 0
    for topology in ("ring", "hypercube", "fattree"):
        for algorithm in ("bsa", "heft", "etf", "spdecomp"):
            combos.append(
                Cell(
                    suite="random", app="random", size=20 + 3 * (i % 4),
                    granularity=(0.5, 1.0, 5.0)[i % 3], topology=topology,
                    algorithm=algorithm, n_procs=8,
                    graph_seed=900 + i, system_seed=950 + i,
                )
            )
            i += 1
    return combos


CELLS = _combos()
IDS = [f"{c.topology}-{c.algorithm}-g{c.graph_seed}" for c in CELLS]


def _schedule(cell: Cell):
    return _SCHEDULERS[cell.algorithm](build_cell_system(cell))


def _chain_system(bump: float = 1.0) -> HeterogeneousSystem:
    """A 5-task chain on a 3-proc ring where processor 0 dominates, so
    every list scheduler places the whole chain there deterministically.
    ``bump`` scales one interior task's execution cost — same placement,
    longer slot — which is exactly the premise of the energy theorem."""
    g = TaskGraph(name="chain")
    for k in range(5):
        g.add_task(k, 10.0)
        if k:
            g.add_edge(k - 1, k, 1.0)
    table = {
        k: (10.0 * (bump if k == 2 else 1.0), 1000.0, 1000.0)
        for k in range(5)
    }
    return HeterogeneousSystem(g, ring(3), table)


class TestEnergy:
    @pytest.mark.parametrize("bumps", [(1.0, 1.5), (1.0, 1.001, 2.0, 8.0)])
    def test_strictly_increases_with_exec_cost(self, bumps):
        energies = [
            schedule_energy(_SCHEDULERS["heft"](_chain_system(b)))
            for b in bumps
        ]
        for lo, hi in zip(energies, energies[1:]):
            assert hi > lo

    @pytest.mark.parametrize("cell", CELLS, ids=IDS)
    def test_decomposition_exact(self, cell):
        """The evaluator must equal an independently-written reduction
        (same float op order: processors, then slots, then hops)."""
        sched = _schedule(cell)
        model = PowerModel.sample(cell.n_procs, seed=cell.system_seed)
        sl = sched.schedule_length()
        expected = 0.0
        for proc in sched.system.topology.processors:
            busy = 0.0
            for task in sched.proc_order[proc]:
                d = sched.slots[task].duration
                expected += model.busy_power(proc) * d
                busy += d
            expected += model.idle_power[proc] * (sl - busy)
        for channel in sched.link_order:
            for hop in sched.link_order[channel]:
                expected += model.link_power * hop.duration
        assert schedule_energy(sched, model) == expected

    @pytest.mark.parametrize("cell", CELLS[:4], ids=IDS[:4])
    def test_exceeds_idle_floor(self, cell):
        """Busy power > idle power, so any non-empty schedule costs
        strictly more than leaving the platform idle for its makespan."""
        sched = _schedule(cell)
        model = PowerModel.uniform(cell.n_procs)
        floor = sum(model.idle_power) * sched.schedule_length()
        assert schedule_energy(sched, model) > floor

    def test_attached_model_used(self):
        sched = _SCHEDULERS["heft"](_chain_system())
        default = schedule_energy(sched)
        hot = PowerModel(frequencies=(3.0,) * 3, idle_power=(0.25,) * 3)
        sched.system.power_model = hot
        assert schedule_energy(sched) == schedule_energy(sched, hot)
        assert schedule_energy(sched) > default

    def test_validation(self):
        sched = _SCHEDULERS["heft"](_chain_system())
        with pytest.raises(ConfigurationError):
            schedule_energy(sched, PowerModel.uniform(7))  # wrong n_procs
        with pytest.raises(ConfigurationError):
            PowerModel(frequencies=(1.0, -1.0), idle_power=(0.1, 0.1))
        with pytest.raises(ConfigurationError):
            PowerModel(frequencies=(1.0,), idle_power=(0.1, 0.1))
        with pytest.raises(ConfigurationError):
            PowerModel(frequencies=(1.0,), idle_power=(0.1,), alpha=0.0)


class TestReliability:
    @pytest.mark.parametrize("cell", CELLS, ids=IDS)
    def test_unit_interval(self, cell):
        r = schedule_reliability(_schedule(cell))
        assert 0.0 < r <= 1.0

    @pytest.mark.parametrize("cell", CELLS[:6], ids=IDS[:6])
    def test_monotone_in_rates(self, cell):
        """Doubling any failure rate can only hurt; with busy resources
        it hurts strictly."""
        sched = _schedule(cell)
        scales = (0.0, 1.0, 2.0, 10.0)
        for vary in ("proc", "link"):
            rels = [
                schedule_reliability(sched, ReliabilityModel.uniform(
                    cell.n_procs,
                    proc_rate=1e-5 * (s if vary == "proc" else 1.0),
                    link_rate=1e-5 * (s if vary == "link" else 1.0),
                ))
                for s in scales
            ]
            for hi, lo in zip(rels, rels[1:]):
                assert lo <= hi, vary
            assert rels[-1] < rels[0], vary  # strict once anything is busy

    def test_zero_rates_certain(self):
        sched = _SCHEDULERS["heft"](_chain_system())
        model = ReliabilityModel.uniform(3, proc_rate=0.0, link_rate=0.0)
        assert schedule_reliability(sched, model) == 1.0

    @pytest.mark.parametrize("cell", CELLS[:4], ids=IDS[:4])
    def test_replication_helps(self, cell):
        sched = _schedule(cell)
        rels = [
            schedule_reliability(sched, ReliabilityModel.uniform(
                cell.n_procs, proc_rate=1e-4, replication=k))
            for k in (1, 2, 4)
        ]
        assert rels[0] < rels[1] < rels[2] <= 1.0

    def test_from_scenario_rates(self):
        """The analytic model and the failure injector must describe the
        same regime: expected event counts spread over resources."""
        system = _chain_system()
        horizon = 100.0
        model = ReliabilityModel.from_scenario("f4l2s0", system, horizon)
        n_channels = max(1, len(list(system.topology.channels())))
        assert model.proc_rates == (4 / (3 * horizon),) * 3
        assert model.link_rate == 2 / (n_channels * horizon)
        with pytest.raises(ConfigurationError):
            ReliabilityModel.from_scenario("f1s0", system, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliabilityModel(proc_rates=(-1e-5, 1e-5))
        with pytest.raises(ConfigurationError):
            ReliabilityModel(proc_rates=(1e-5,), replication=0)
        sched = _SCHEDULERS["heft"](_chain_system())
        with pytest.raises(ConfigurationError):
            schedule_reliability(sched, ReliabilityModel.uniform(5))


class TestThroughput:
    @pytest.mark.parametrize("cell", CELLS, ids=IDS)
    def test_period_is_bottleneck(self, cell):
        sched = _schedule(cell)
        busy = bottleneck_busy_times(sched)
        period = schedule_throughput(sched)
        assert busy
        assert period == max(busy.values())
        for resource, b in busy.items():
            assert 0.0 <= b <= period, resource

    @pytest.mark.parametrize("cell", CELLS[:4], ids=IDS[:4])
    def test_proc_busy_is_slot_sum(self, cell):
        sched = _schedule(cell)
        busy = bottleneck_busy_times(sched)
        for proc in sched.system.topology.processors:
            expected = sum(
                sched.slots[t].duration for t in sched.proc_order[proc]
            )
            assert busy.get(("proc", proc), 0.0) == expected

    def test_period_bounded_by_makespan(self):
        """One instance can't beat the pipeline's steady state."""
        for cell in CELLS[:6]:
            sched = _schedule(cell)
            assert schedule_throughput(sched) <= sched.schedule_length()


class TestRegistry:
    def test_canonical_order_any_spelling(self):
        assert parse_objectives("throughput,energy") == ("energy", "throughput")
        assert parse_objectives(["reliability", "makespan"]) == (
            "makespan", "reliability")
        assert objectives_token("throughput, energy") == "energy,throughput"
        assert objectives_token("") == ""
        assert parse_objectives(OBJECTIVE_NAMES) == OBJECTIVE_NAMES

    def test_rejects_unknown_and_duplicates(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            parse_objectives("energy,latency")
        with pytest.raises(ConfigurationError, match="duplicate objective"):
            parse_objectives("energy,makespan,energy")

    def test_senses_cover_registry(self):
        assert set(OBJECTIVE_SENSES) == set(OBJECTIVE_NAMES)
        assert set(OBJECTIVE_SENSES.values()) == {"min", "max"}

    def test_evaluate_makespan_bit_exact(self):
        sched = _schedule(CELLS[0])
        values = evaluate_objectives(sched, "makespan")
        assert values == {"makespan": sched.schedule_length()}
        full = evaluate_objectives(sched)
        assert list(full) == list(OBJECTIVE_NAMES)
        assert full["makespan"] == sched.schedule_length()


def _random_points(rng: random.Random, n: int):
    return [
        (
            f"p{i}",
            {
                "makespan": rng.uniform(1, 100),
                "energy": rng.uniform(1, 100),
                "reliability": rng.uniform(0, 1),
                "throughput": rng.uniform(1, 100),
            },
        )
        for i in range(n)
    ]


class TestParetoFront:
    def test_dominance_respects_senses(self):
        a = {"makespan": 1.0, "reliability": 0.9}
        b = {"makespan": 2.0, "reliability": 0.5}
        objs = "makespan,reliability"
        assert dominates(a, b, objs)
        assert not dominates(b, a, objs)
        # better makespan but worse reliability: incomparable
        c = {"makespan": 0.5, "reliability": 0.1}
        assert not dominates(c, a, objs) and not dominates(a, c, objs)
        # equal vectors dominate neither way
        assert not dominates(a, dict(a), objs)

    @pytest.mark.parametrize("seed", range(8))
    def test_front_has_no_dominated_point(self, seed):
        rng = random.Random(seed)
        points = _random_points(rng, 24)
        front = set(pareto_front(points))
        by_label = dict(points)
        for label in front:
            assert not any(
                dominates(other, by_label[label])
                for lbl, other in points if lbl != label
            )
        # and every excluded point is dominated by someone
        for label, values in points:
            if label not in front:
                assert any(
                    dominates(other, values)
                    for lbl, other in points if lbl != label
                )

    @pytest.mark.parametrize("seed", range(8))
    def test_front_insertion_order_independent(self, seed):
        rng = random.Random(1000 + seed)
        points = _random_points(rng, 16)
        baseline = set(pareto_front(points))
        for _ in range(5):
            shuffled = points[:]
            rng.shuffle(shuffled)
            assert set(pareto_front(shuffled)) == baseline

    def test_ties_both_survive(self):
        v = {"makespan": 1.0, "energy": 2.0}
        points = [("a", dict(v)), ("b", dict(v)),
                  ("c", {"makespan": 3.0, "energy": 3.0})]
        assert pareto_front(points, "makespan,energy") == ["a", "b"]

    def test_missing_objective_rejected(self):
        points = [("a", {"makespan": 1.0}),
                  ("b", {"makespan": 2.0, "energy": 1.0})]
        with pytest.raises(ConfigurationError, match="lacks"):
            pareto_front(points, "makespan,energy")


class TestCacheKeyComposition:
    """Satellite regression: no spelling or axis-composition games can
    alias two different computations onto one ResultCache key."""

    BASE = Cell("random", "random", 30, 1.0, "hypercube", "bsa",
                n_procs=8, graph_seed=7, system_seed=7)

    def test_reordered_objectives_same_key(self):
        a = dataclasses.replace(self.BASE, objectives="throughput,energy")
        b = dataclasses.replace(self.BASE, objectives="energy,throughput")
        assert a.key() == b.key()
        assert a.key().endswith("/objenergy,throughput")

    def test_static_keys_unchanged(self):
        """Cells without objectives keep their historical keys — the
        suffix only appears when the axis is used."""
        assert "/obj" not in self.BASE.key()

    def test_composes_with_scenario_in_fixed_order(self):
        both = dataclasses.replace(
            self.BASE, scenario="f1l1s0", objectives="reliability,energy")
        key = both.key()
        assert "/scf1l1s0/objenergy,reliability" in key
        reordered = dataclasses.replace(
            both, objectives="energy, reliability")
        assert reordered.key() == key

    def test_duplicate_objectives_rejected_at_key_time(self):
        bad = dataclasses.replace(self.BASE, objectives="energy,energy")
        with pytest.raises(ConfigurationError, match="duplicate objective"):
            bad.key()

    def test_distinct_objectives_distinct_keys(self):
        a = dataclasses.replace(self.BASE, objectives="energy")
        b = dataclasses.replace(self.BASE, objectives="reliability")
        assert a.key() != b.key() != self.BASE.key()
