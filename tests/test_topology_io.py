"""Topology interchange: the sniffed JSON file format and its CLI
surfaces (`repro convert --topology`, `repro schedule --topology-file`).
"""

import pytest

from repro.cli import main
from repro.errors import TopologyError
from repro.network.topology import (
    LinkSpec,
    Topology,
    apply_link_model,
    fat_tree,
    is_topology_json,
    load_topology,
    ring,
    save_topology,
    topology_from_json,
    topology_to_json,
)


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "topology",
        [
            ring(4),
            fat_tree(8),  # non-default bandwidths toward the root
            apply_link_model(ring(6), duplex="full", bandwidth_skew=3.0, seed=1),
            Topology(2, [(0, 1)], name="tiny",
                     link_specs={(0, 1): LinkSpec(2.5, "full")}),
        ],
    )
    def test_round_trip_preserves_everything(self, topology):
        back = topology_from_json(topology_to_json(topology))
        assert back.to_dict() == topology.to_dict()
        assert back.name == topology.name
        for a, b in topology.links:
            assert back.spec(a, b) == topology.spec(a, b)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "net.topo.json")
        save_topology(fat_tree(8), path)
        back = load_topology(path)
        assert back.to_dict() == fat_tree(8).to_dict()

    def test_sniffer(self):
        assert is_topology_json(topology_to_json(ring(4)))
        assert not is_topology_json("digraph g { }")
        assert not is_topology_json('{"tasks": [], "version": 1}')
        assert not is_topology_json("{not json")

    @pytest.mark.parametrize(
        "text, match",
        [
            ("{", "not valid JSON"),
            ("{}", "not a repro-topology"),
            ('{"format": "other"}', "not a repro-topology"),
            ('{"format": "repro-topology", "version": 2}', "version"),
            ('{"format": "repro-topology", "version": 1}', "n_procs"),
        ],
    )
    def test_error_paths(self, text, match):
        with pytest.raises(TopologyError, match=match):
            topology_from_json(text)

    def test_structural_validation_still_applies(self):
        # hand-edited file describing a disconnected network is rejected
        # by the Topology constructor itself
        text = ('{"format": "repro-topology", "version": 1, "n_procs": 4, '
                '"links": [[0, 1]]}')
        with pytest.raises(TopologyError):
            topology_from_json(text)


class TestCli:
    def test_convert_topology_normalizes(self, tmp_path, capsys):
        src = str(tmp_path / "src.json")
        dst = str(tmp_path / "dst.json")
        save_topology(fat_tree(8), src)
        assert main(["convert", "--topology", src, dst]) == 0
        assert "8 processors" in capsys.readouterr().out
        assert load_topology(dst).to_dict() == fat_tree(8).to_dict()

    def test_convert_topology_rejects_graph_file(self, tmp_path, capsys):
        src = str(tmp_path / "graph.json")
        with open(src, "w") as fh:
            fh.write('{"format": "repro-trace", "version": 1}')
        assert main(["convert", "--topology", src, str(tmp_path / "o")]) == 7
        assert "repro convert:" in capsys.readouterr().err

    def test_schedule_with_topology_file(self, tmp_path, capsys):
        path = str(tmp_path / "net.json")
        save_topology(ring(4), path)
        assert main(["schedule", "--topology-file", path, "-a", "heft",
                     "-n", "20"]) == 0
        out = capsys.readouterr().out
        assert "platform : ring4" in out

    def test_schedule_topology_file_with_graph(self, tmp_path, capsys):
        path = str(tmp_path / "net.json")
        save_topology(ring(8), path)
        assert main(["schedule", "--topology-file", path, "-a", "dls",
                     "--graph", "examples/corpus/fft8.trace.json"]) == 0
        out = capsys.readouterr().out
        assert "platform : ring8" in out

    def test_schedule_topology_file_procs_mismatch(self, tmp_path, capsys):
        path = str(tmp_path / "net.json")
        save_topology(ring(4), path)
        assert main(["schedule", "--topology-file", path, "-p", "8"]) == 2
        assert "cannot apply" in capsys.readouterr().err

    def test_schedule_topology_file_vector_mismatch(self, tmp_path, capsys):
        # the 8-proc trace cannot bind to a 4-proc platform file
        path = str(tmp_path / "net.json")
        save_topology(ring(4), path)
        assert main(["schedule", "--topology-file", path,
                     "--graph", "examples/corpus/fft8.trace.json"]) == 2
        assert "cost vectors" in capsys.readouterr().err
