"""Tests for the BSA scheduler (core algorithm behaviour and options)."""

import pytest

from repro import (
    HeterogeneousSystem,
    clique,
    random_graph,
    ring,
    schedule_bsa,
    validate_schedule,
)
from repro.core.bsa import BSAOptions, BSAScheduler
from repro.errors import ConfigurationError


class TestOptions:
    def test_defaults(self):
        opts = BSAOptions()
        assert opts.migration_trigger == "always"
        assert opts.route_mode == "shortest"
        assert opts.migration_scope == "global"
        assert opts.n_sweeps == 0  # sweep until stable

    def test_default_trigger_is_paper_faithful(self):
        """Lock in the docstring/default reconciliation: the default
        trigger is the ICPP text's literal "always" (vacuous FT > DRT);
        "st_gt_drt" is the journal-formulation ablation and must stay
        available but non-default."""
        assert BSAOptions().migration_trigger == "always"
        assert BSAOptions.__dataclass_fields__["migration_trigger"].default == "always"
        # the ablation spelling is accepted...
        assert BSAOptions(migration_trigger="st_gt_drt").migration_trigger == "st_gt_drt"
        # ...and the module docstring agrees with the default
        import repro.core.bsa as bsa_module
        assert '``"always"`` (default' in bsa_module.__doc__

    def test_bad_trigger_rejected(self):
        with pytest.raises(ConfigurationError):
            BSAOptions(migration_trigger="sometimes")

    def test_bad_route_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            BSAOptions(route_mode="scenic")

    def test_bad_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            BSAOptions(migration_scope="universe")

    def test_negative_sweeps_rejected(self):
        with pytest.raises(ConfigurationError):
            BSAOptions(n_sweeps=-1)

    def test_global_scope_needs_shortest_routes(self):
        with pytest.raises(ConfigurationError):
            BSAOptions(migration_scope="global", route_mode="incremental")


class TestScheduleValidity:
    @pytest.mark.parametrize("options", [
        BSAOptions(),
        BSAOptions(migration_trigger="st_gt_drt"),
        BSAOptions(migration_scope="neighbors"),
        BSAOptions(migration_scope="neighbors", route_mode="incremental"),
        BSAOptions(insertion=False),
        BSAOptions(vip_follow=False),
        BSAOptions(n_sweeps=1),
        BSAOptions(truncate_routes=False, migration_scope="neighbors",
                   route_mode="incremental"),
    ], ids=[
        "default", "st_gt_drt", "neighbors", "incremental", "append",
        "novip", "1sweep", "no-truncate",
    ])
    def test_every_variant_produces_valid_schedule(self, small_random_system, options):
        sched = schedule_bsa(small_random_system, options)
        validate_schedule(sched)
        assert len(sched.slots) == small_random_system.graph.n_tasks

    def test_paper_system_valid(self, paper_system):
        sched = schedule_bsa(paper_system)
        validate_schedule(sched)


class TestBehaviour:
    def test_never_worse_than_serialization(self, small_random_system):
        sch = BSAScheduler(small_random_system, BSAOptions())
        sched = sch.run()
        assert sched.schedule_length() <= sch.stats.serial_length + 1e-6

    def test_deterministic(self, small_random_system):
        a = schedule_bsa(small_random_system, BSAOptions(seed=3))
        b = schedule_bsa(small_random_system, BSAOptions(seed=3))
        assert a.schedule_length() == b.schedule_length()
        assert {t: s.proc for t, s in a.slots.items()} == {
            t: s.proc for t, s in b.slots.items()
        }

    def test_stats_populated(self, small_random_system):
        sch = BSAScheduler(small_random_system, BSAOptions())
        sch.run()
        stats = sch.stats
        assert stats.first_pivot in range(4)
        assert sorted(stats.pivot_sequence) == [0, 1, 2, 3]
        assert stats.n_examined > 0
        from repro.util.intervals import array_enabled

        if array_enabled():
            # the array engine's candidate masks may discard *every*
            # destination of an examined task before evaluating any
            assert stats.n_evaluated > 0
        else:
            assert stats.n_evaluated >= stats.n_examined
        assert stats.n_sweeps_run >= 1
        assert stats.serial_length > 0

    def test_sweeps_capped_by_option(self, small_random_system):
        sch = BSAScheduler(small_random_system, BSAOptions(n_sweeps=2))
        sch.run()
        assert sch.stats.n_sweeps_run == 2

    def test_multi_sweep_never_hurts(self, small_random_system):
        one = schedule_bsa(small_random_system, BSAOptions(n_sweeps=1))
        conv = schedule_bsa(small_random_system, BSAOptions())
        assert conv.schedule_length() <= one.schedule_length() + 1e-6

    def test_single_processor_topology_like(self, paper_system):
        """On a clique of identical processors BSA stays valid and sane."""
        graph = paper_system.graph
        table = {t: [graph.cost(t)] * 4 for t in graph.tasks()}
        system = HeterogeneousSystem.from_exec_table(graph, clique(4), table)
        sched = schedule_bsa(system)
        validate_schedule(sched)
        # never worse than pure serial on one processor
        assert sched.schedule_length() <= graph.total_exec_cost() + 1e-6

    def test_trivial_graph(self):
        from repro import TaskGraph

        g = TaskGraph(name="pair")
        g.add_task("a", 10.0)
        g.add_task("b", 20.0)
        g.add_edge("a", "b", 5.0)
        system = HeterogeneousSystem.sample(g, ring(4), het_range=(1, 2), seed=0)
        sched = schedule_bsa(system)
        validate_schedule(sched)

    def test_heterogeneity_exploited(self):
        """A lone heavy task should land on (one of) its faster processors."""
        from repro import TaskGraph

        g = TaskGraph(name="single-ish")
        g.add_task("big", 100.0)
        g.add_task("tail", 1.0)
        g.add_edge("big", "tail", 0.1)
        # processor 2 is 10x faster for 'big'
        table = {"big": [1000.0, 1000.0, 100.0, 1000.0],
                 "tail": [1.0, 1.0, 1.0, 1.0]}
        system = HeterogeneousSystem.from_exec_table(g, clique(4), table)
        sched = schedule_bsa(system)
        assert sched.proc_of("big") == 2
