"""The observability layer: deterministic counters, spans, exports.

Pins the layer's three contracts:

1. **Determinism** — for a fixed request and engine mode the counters
   are byte-for-byte identical rep-to-rep and independent of ``--jobs``
   (worker deltas merge commutatively). A golden snapshot for one
   pinned cell regression-tests *how* the schedule was found.
2. **Out-of-band** — telemetry never changes an artifact: schedule
   bundles are byte-identical across every ``REPRO_HOTPATH`` mode with
   ``REPRO_OBS=1``, exactly as they are with it off.
3. **Exports** — ``/metrics`` renders every registered counter (zeros
   included) in Prometheus text 0.0.4, span records become valid
   Chrome trace JSON, and the schedule Gantt export carries matched
   flow arrows.
"""

from __future__ import annotations

import http.client
import io
import json
import threading

import pytest

from repro import obs
from repro.errors import SchedulingError
from repro.experiments import cache as cache_mod
from repro.experiments.config import Cell
from repro.experiments.runner import run_cells
from repro.obs import counters as counters_mod
from repro.obs.chrometrace import schedule_trace, spans_to_trace, trace_to_json
from repro.obs.ndjson import configure_log, log_json, telemetry
from repro.obs.promtext import CONTENT_TYPE, metric_name, render_metrics
from repro.service.http import make_server
from repro.service.pipeline import execute
from repro.service.requests import ScheduleRequest
from repro.util.intervals import HOTPATH_MODES, set_hotpath_mode


@pytest.fixture()
def obs_on(monkeypatch):
    """Collection on, counters/spans zeroed; prior state restored."""
    was_active = counters_mod.ACTIVE
    monkeypatch.delenv("REPRO_OBS", raising=False)
    obs.enable()
    obs.reset()
    obs.reset_spans()
    yield
    obs.reset()
    obs.reset_spans()
    if not was_active:
        obs.disable()


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(cache_mod, "_default_cache", None)
    yield
    cache_mod._default_cache = None


def _pinned_cell(size: int = 40, algorithm: str = "bsa",
                 seed: int = 0) -> Cell:
    return Cell(suite="random", app="random", size=size, granularity=1.0,
                topology="ring", algorithm=algorithm,
                graph_seed=seed, system_seed=seed)


@pytest.fixture()
def incremental_mode():
    """Force the incremental engine (counters are mode-specific by
    design: what the golden snapshot pins is one engine's work)."""
    from repro.util.intervals import hotpath_mode

    before = hotpath_mode()
    set_hotpath_mode("incremental")
    yield
    set_hotpath_mode(before)


def _engine_counters() -> dict:
    return {k: v for k, v in obs.snapshot().items() if v}


# ----------------------------------------------------------------------
# counters: golden snapshot, determinism, jobs-independence
# ----------------------------------------------------------------------
#: exact incremental-engine work for the pinned cell — a regression
#: test for *how* the schedule is found, which makespan pins cannot
#: see. Any engine change that moves these must be deliberate.
GOLDEN_INCREMENTAL_N40 = {
    "bsa.candidates_evaluated": 440,
    "bsa.candidates_pruned": 1930,
    "bsa.migrations": 39,
    "bsa.rejected_migrations": 2,
    "bsa.sweeps": 3,
    "bsa.tasks_examined": 158,
    "settle.cone_pops": 2210,
    "settle.full_passes": 1,
    "settle.incremental_runs": 39,
    "txn.rollbacks": 2,
}


class TestCounters:
    def test_registry_has_help_text(self):
        assert counters_mod.COUNTERS
        for name, help_text in counters_mod.COUNTERS.items():
            assert "." in name
            assert help_text.strip()

    def test_snapshot_includes_zeros_sorted(self, obs_on):
        snap = obs.snapshot()
        assert set(counters_mod.COUNTERS) <= set(snap)
        assert list(snap) == sorted(snap)
        assert all(v == 0 for v in snap.values())

    def test_enable_propagates_via_env(self, obs_on, monkeypatch):
        import os

        assert os.environ.get("REPRO_OBS") == "1"
        obs.disable()
        assert "REPRO_OBS" not in os.environ
        assert not obs.enabled()

    def test_merge_commutes(self, obs_on):
        obs.inc("bsa.sweeps", 2)
        obs.merge({"bsa.sweeps": 3, "txn.rollbacks": 1})
        obs.merge({"txn.rollbacks": 4})
        snap = obs.snapshot()
        assert snap["bsa.sweeps"] == 5
        assert snap["txn.rollbacks"] == 5

    def test_golden_snapshot_incremental(self, obs_on, incremental_mode):
        run_cells([_pinned_cell()], use_cache=False)
        assert _engine_counters() == GOLDEN_INCREMENTAL_N40

    def test_rep_to_rep_identical(self, obs_on, incremental_mode):
        run_cells([_pinned_cell()], use_cache=False)
        first = _engine_counters()
        obs.reset()
        run_cells([_pinned_cell()], use_cache=False)
        assert _engine_counters() == first

    def test_jobs_independent(self, obs_on, incremental_mode):
        cells = [_pinned_cell(size=s, algorithm=a, seed=s)
                 for s in (18, 20, 22) for a in ("bsa", "dls")]
        run_cells(cells, jobs=1, use_cache=False)
        serial = _engine_counters()
        obs.reset()
        run_cells(cells, jobs=2, chunk_size=2, use_cache=False)
        assert _engine_counters() == serial
        assert serial["bsa.sweeps"] > 0

    def test_disabled_counts_nothing(self, incremental_mode):
        assert not counters_mod.ACTIVE  # tier-1 runs with obs off
        obs.reset()
        run_cells([_pinned_cell(size=18)], use_cache=False)
        assert _engine_counters() == {}

    def test_cache_dispositions_partition(self, obs_on, fresh_cache,
                                          incremental_mode):
        cell = _pinned_cell(size=18)
        run_cells([cell], use_cache=True)
        snap = obs.snapshot()
        assert snap["cache.misses"] == 1
        assert snap["cache.hits"] == 0
        run_cells([cell], use_cache=True)
        snap = obs.snapshot()
        assert snap["cache.hits"] == 1
        assert snap["cache.misses"] == 1
        assert snap["cache.stale"] == 0


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_elapsed_valid_even_when_disabled(self):
        assert not counters_mod.ACTIVE
        obs.reset_spans()
        with obs.span("quiet") as sp:
            pass
        assert sp.elapsed_s >= 0.0
        assert obs.span_records() == []

    def test_records_nest_with_depth_and_attrs(self, obs_on):
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                pass
        records = obs.span_records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["attrs"] == {"kind": "test"}
        assert inner["dur_s"] <= outer["dur_s"]
        assert "thread" in inner

    def test_reset_spans(self, obs_on):
        with obs.span("x"):
            pass
        assert obs.span_records()
        obs.reset_spans()
        assert obs.span_records() == []


# ----------------------------------------------------------------------
# chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_spans_to_trace_shape(self, obs_on):
        with obs.span("outer"):
            with obs.span("inner", n=3):
                pass
        doc = spans_to_trace(obs.span_records(),
                             counters={"bsa.sweeps": 2})
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        assert all(e["dur"] >= 0 for e in slices)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert doc["otherData"]["counters"] == {"bsa.sweeps": 2}
        json.loads(trace_to_json(doc))  # serializes cleanly

    @pytest.fixture()
    def bundle(self, fresh_cache):
        resp = execute(ScheduleRequest(workload="random", size=24,
                                       topology="ring", algorithm="bsa"),
                       use_cache=False)
        return json.loads(resp.bundle_text)

    def test_schedule_trace_gantt(self, bundle):
        doc = schedule_trace(bundle)
        events = doc["traceEvents"]
        tasks = [e for e in events
                 if e["ph"] == "X" and e.get("cat") == "task"]
        hops = [e for e in events
                if e["ph"] == "X" and e.get("cat") == "message"]
        assert len(tasks) == 24
        assert all(e["pid"] == 1 for e in tasks)
        assert hops and all(e["pid"] == 2 for e in hops)
        # every flow arrow start has exactly one matching finish
        starts = sorted(e["id"] for e in events if e["ph"] == "s")
        finishes = sorted(e["id"] for e in events if e["ph"] == "f")
        assert starts and starts == finishes
        assert doc["otherData"]["algorithm"] == "BSA"

    def test_bare_schedule_dict_accepted(self, bundle):
        doc = schedule_trace(bundle["schedule"])
        assert any(e.get("cat") == "task" for e in doc["traceEvents"])

    def test_non_bundle_rejected(self):
        with pytest.raises(SchedulingError):
            schedule_trace({"nope": 1})
        with pytest.raises(SchedulingError):
            schedule_trace([1, 2])


# ----------------------------------------------------------------------
# prometheus text + ndjson log
# ----------------------------------------------------------------------
class TestPromText:
    def test_metric_name_mapping(self):
        assert (metric_name("bsa.candidates_evaluated")
                == "repro_bsa_candidates_evaluated_total")
        assert metric_name("cache.hits") == "repro_cache_hits_total"

    def test_render_covers_registry_with_zeros(self, obs_on):
        text = render_metrics()
        assert text.endswith("\n")
        for counter in counters_mod.COUNTERS:
            assert f"# HELP {metric_name(counter)} " in text
            assert f"# TYPE {metric_name(counter)} counter" in text
            assert f"{metric_name(counter)} 0\n" in text
        assert "repro_obs_enabled 1" in text
        assert 'repro_build_info{version="' in text

    def test_render_reflects_values_and_gauges(self, obs_on):
        obs.inc("bsa.sweeps", 7)
        text = render_metrics(extra_gauges={"repro_http_requests": 3})
        assert "repro_bsa_sweeps_total 7" in text
        assert "repro_http_requests 3" in text
        assert "version=0.0.4" in CONTENT_TYPE


class TestNdjson:
    def test_log_json_ndjson_lines(self):
        sink = io.StringIO()
        configure_log(stream=sink)
        try:
            log_json(event="request", path="/health", status=200)
            log_json(event="request", path="/metrics", status=200)
        finally:
            configure_log()
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"event": "request", "path": "/health",
                         "status": 200}
        # keys are sorted so tails diff cleanly
        assert lines[0].index("event") < lines[0].index("path")

    def test_telemetry_goes_to_stderr_and_sink(self, capsys):
        sink = io.StringIO()
        configure_log(stream=sink)
        try:
            telemetry("hello operator")
        finally:
            configure_log()
        assert "hello operator" in capsys.readouterr().err
        rec = json.loads(sink.getvalue())
        assert rec["event"] == "telemetry"
        assert rec["message"] == "hello operator"

    def test_unconfigured_is_noop(self):
        configure_log()
        log_json(event="dropped")  # must not raise


# ----------------------------------------------------------------------
# byte-identity: telemetry never touches the artifacts
# ----------------------------------------------------------------------
class TestArtifactsUnchanged:
    def test_bundles_identical_across_modes_with_obs_on(
            self, obs_on, fresh_cache):
        req = ScheduleRequest(workload="gauss", size=21,
                              topology="hypercube", algorithm="bsa")
        texts = {}
        from repro.util.intervals import hotpath_mode

        before = hotpath_mode()
        try:
            for mode in HOTPATH_MODES:
                try:
                    set_hotpath_mode(mode)
                except Exception:  # array without numpy
                    continue
                texts[mode] = execute(req, use_cache=False).bundle_text
        finally:
            set_hotpath_mode(before)
        assert len(set(texts.values())) == 1, sorted(texts)

    def test_obs_on_off_same_bytes(self, fresh_cache):
        req = ScheduleRequest(workload="random", size=20,
                              topology="ring", algorithm="bsa")
        off = execute(req, use_cache=False).bundle_text
        obs.enable()
        obs.reset()
        try:
            on = execute(req, use_cache=False).bundle_text
        finally:
            obs.disable()
            obs.reset()
            obs.reset_spans()
        assert on == off

    def test_wall_time_is_extra_not_body(self, fresh_cache):
        resp = execute(ScheduleRequest(workload="random", size=18,
                                       topology="ring"), use_cache=False)
        assert resp.extra["wall_s"] >= 0.0
        assert resp.extra["wall_ms"] >= 0.0
        assert "wall_ms" not in resp.bundle_text
        assert "wall_ms" not in json.dumps(resp.to_dict()["summary"])


# ----------------------------------------------------------------------
# HTTP surface: /metrics, wall headers, request log
# ----------------------------------------------------------------------
def _request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestHttpObservability:
    @pytest.fixture()
    def served(self, fresh_cache, obs_on):
        sink = io.StringIO()
        configure_log(stream=sink)
        srv = make_server(quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, sink
        srv.shutdown()
        srv.server_close()
        configure_log()

    def test_metrics_endpoint(self, served):
        srv, _ = served
        status, headers, body = _request(srv, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        text = body.decode()
        for counter in counters_mod.COUNTERS:
            assert metric_name(counter) in text
        assert "repro_http_requests " in text
        assert "repro_http_uptime_seconds " in text

    def test_metrics_counts_scheduling_work(self, served):
        srv, _ = served
        payload = {"workload": "random", "size": 20, "topology": "ring",
                   "algorithm": "bsa"}
        status, headers, _ = _request(srv, "POST", "/schedule", payload)
        assert status == 200
        _, _, body = _request(srv, "GET", "/metrics")
        line = [ln for ln in body.decode().splitlines()
                if ln.startswith("repro_bsa_sweeps_total ")][0]
        assert int(line.split()[1]) > 0

    def test_wall_ms_header_on_posts(self, served):
        srv, _ = served
        payload = {"workload": "random", "size": 18, "topology": "ring"}
        status, headers, _ = _request(srv, "POST", "/schedule", payload)
        assert status == 200
        assert float(headers["X-Repro-Wall-Ms"]) >= 0.0
        status, headers, _ = _request(
            srv, "POST", "/sweep",
            {"sizes": [18], "topologies": ["ring"], "n_procs": 4,
             "algorithms": ["heft"]})
        assert status == 200
        assert float(headers["X-Repro-Wall-Ms"]) >= 0.0

    def test_request_log_lines(self, served):
        import time

        srv, sink = served
        _request(srv, "GET", "/health")
        payload = {"workload": "random", "size": 18, "topology": "ring"}
        _request(srv, "POST", "/schedule", payload)
        # the record is written just after the response is sent — give
        # the handler thread a beat to land the second line
        deadline = time.time() + 10
        while (sink.getvalue().count('"event": "request"') < 2
               and time.time() < deadline):
            time.sleep(0.02)
        records = [json.loads(ln) for ln in
                   sink.getvalue().splitlines()]
        reqs = [r for r in records if r["event"] == "request"]
        assert [r["path"] for r in reqs] == ["/health", "/schedule"]
        post = reqs[-1]
        assert post["method"] == "POST"
        assert post["status"] == 200
        assert post["wall_ms"] >= 0.0
        assert post["cache"] in ("hit", "miss")
        assert post["request_key"].startswith("schedule/")

    def test_metrics_never_auth_gated(self, fresh_cache):
        srv = make_server(api_key="sesame", quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, _ = _request(srv, "GET", "/metrics")
            assert status == 200
            status, _, _ = _request(srv, "GET", "/version")
            assert status == 401
        finally:
            srv.shutdown()
            srv.server_close()

    def test_async_job_reports_wall_ms(self, served):
        import time

        srv, _ = served
        srv.async_threshold = 0
        payload = {"sizes": [18, 20], "topologies": ["ring"],
                   "n_procs": 4, "algorithms": ["heft"]}
        status, _, body = _request(srv, "POST", "/sweep", payload)
        assert status == 202
        poll = json.loads(body)["poll"]
        deadline = time.time() + 120
        while True:
            _, _, body = _request(srv, "GET", poll)
            job = json.loads(body)
            if job["status"] in ("done", "failed"):
                break
            assert time.time() < deadline
            time.sleep(0.1)
        assert job["status"] == "done"
        assert job["wall_ms"] >= 0.0
