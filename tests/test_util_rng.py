"""Tests for deterministic RNG helpers."""

import pytest

from repro.util.rng import RngStream, stable_seed, stable_uniform


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, (2, 3)) == stable_seed("a", 1, (2, 3))

    def test_different_parts_differ(self):
        assert stable_seed("a") != stable_seed("b")

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b")
        assert stable_seed("ab") != stable_seed("a", "b")


class TestStableUniform:
    def test_in_range(self):
        for key in range(50):
            v = stable_uniform(42, key, 1.0, 50.0)
            assert 1.0 <= v <= 50.0

    def test_deterministic(self):
        assert stable_uniform(1, "k", 0, 1) == stable_uniform(1, "k", 0, 1)

    def test_key_sensitivity(self):
        assert stable_uniform(1, "k1", 0, 1) != stable_uniform(1, "k2", 0, 1)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            stable_uniform(1, "k", 5.0, 1.0)

    def test_degenerate_range(self):
        assert stable_uniform(1, "k", 3.0, 3.0) == 3.0


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a, b = RngStream(9), RngStream(9)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fork_independent_of_parent_consumption(self):
        a = RngStream(9)
        fork_before = a.fork("child").random()
        a2 = RngStream(9)
        a2.random()  # consume parent
        fork_after = a2.fork("child").random()
        assert fork_before == fork_after

    def test_fork_names_differ(self):
        root = RngStream(3)
        assert root.fork("x").random() != root.fork("y").random()

    def test_delegations(self):
        r = RngStream(1)
        assert 0 <= r.randint(0, 10) <= 10
        assert 1.0 <= r.uniform(1.0, 2.0) <= 2.0
        assert r.choice([5]) == 5
        assert sorted(r.sample(range(10), 3))[0] >= 0
        seq = list(range(10))
        r.shuffle(seq)
        assert sorted(seq) == list(range(10))
