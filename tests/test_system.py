"""Tests for the heterogeneous system (cost binding)."""

import pytest

from repro import HeterogeneousSystem, LinkHeterogeneity, TaskGraph, ring
from repro.errors import ConfigurationError, TopologyError


class TestFromExecTable:
    def test_paper_table(self, paper_system):
        assert paper_system.exec_cost("T1", 0) == 39
        assert paper_system.exec_cost("T1", 1) == 7
        assert paper_system.exec_cost("T9", 3) == 20
        assert paper_system.n_procs == 4

    def test_row_access(self, paper_system):
        assert paper_system.exec_cost_row("T3") == (15, 28, 39, 6)
        assert paper_system.fastest_proc("T3") == 3

    def test_median_and_mean(self, paper_system):
        # T9: (8, 16, 15, 20) -> sorted (8, 15, 16, 20), median 15.5
        assert paper_system.median_exec_cost("T9") == pytest.approx(15.5)
        assert paper_system.mean_exec_cost("T9") == pytest.approx(14.75)

    def test_wrong_row_length_rejected(self, diamond):
        table = {t: [1.0, 2.0] for t in diamond.tasks()}  # ring(3) needs 3
        with pytest.raises(ConfigurationError):
            HeterogeneousSystem.from_exec_table(diamond, ring(3), table)

    def test_missing_task_rejected(self, diamond):
        table = {"a": [1, 1, 1]}
        with pytest.raises(ConfigurationError):
            HeterogeneousSystem.from_exec_table(diamond, ring(3), table)

    def test_nonpositive_cost_rejected(self, diamond):
        table = {t: [1.0, 0.0, 1.0] for t in diamond.tasks()}
        with pytest.raises(ConfigurationError):
            HeterogeneousSystem.from_exec_table(diamond, ring(3), table)


class TestSample:
    def test_factor_range_and_normalization(self, diamond):
        system = HeterogeneousSystem.sample(diamond, ring(4), het_range=(1, 50), seed=3)
        for t in diamond.tasks():
            row = system.exec_cost_row(t)
            nominal = diamond.cost(t)
            # the fastest processor runs the task at exactly the nominal cost
            assert min(row) == pytest.approx(nominal)
            assert max(row) <= 50 * nominal + 1e-9

    def test_deterministic(self, diamond):
        a = HeterogeneousSystem.sample(diamond, ring(4), seed=5)
        b = HeterogeneousSystem.sample(diamond, ring(4), seed=5)
        for t in diamond.tasks():
            assert a.exec_cost_row(t) == b.exec_cost_row(t)

    def test_seed_changes_costs(self, diamond):
        a = HeterogeneousSystem.sample(diamond, ring(4), seed=5)
        b = HeterogeneousSystem.sample(diamond, ring(4), seed=6)
        assert any(a.exec_cost_row(t) != b.exec_cost_row(t) for t in diamond.tasks())

    def test_bad_range_rejected(self, diamond):
        with pytest.raises(ConfigurationError):
            HeterogeneousSystem.sample(diamond, ring(4), het_range=(5, 2))


class TestLinkFactors:
    def test_homogeneous_default(self, paper_system):
        assert paper_system.link_factor(("T1", "T2"), (0, 1)) == 1.0
        assert paper_system.comm_cost(("T1", "T2"), (0, 1)) == 20.0

    def test_missing_link_rejected(self, paper_system):
        with pytest.raises(TopologyError):
            paper_system.comm_cost(("T1", "T2"), (0, 2))  # ring(4): no 0-2 link

    def test_per_message_link_sampling(self, diamond):
        system = HeterogeneousSystem.sample(
            diamond, ring(4), seed=1, link_het_range=(1, 50)
        )
        f1 = system.link_factor(("a", "b"), (0, 1))
        assert 1.0 <= f1 <= 50.0
        # deterministic and direction-independent (canonical link id)
        assert system.link_factor(("a", "b"), (1, 0)) == f1
        # different message or link gives (almost surely) different factor
        assert system.link_factor(("a", "c"), (0, 1)) != f1

    def test_per_link_mode(self, diamond):
        table = {t: [1.0, 1.0, 1.0] for t in diamond.tasks()}
        system = HeterogeneousSystem.from_exec_table(
            diamond, ring(3), table,
            link_mode=LinkHeterogeneity.PER_LINK,
            per_link_factors={(0, 1): 2.0, (1, 2): 3.0, (0, 2): 4.0},
        )
        assert system.comm_cost(("a", "b"), (1, 2)) == 3.0 * 5.0

    def test_per_link_mode_requires_factors(self, diamond):
        table = {t: [1.0, 1.0, 1.0] for t in diamond.tasks()}
        with pytest.raises(ConfigurationError):
            HeterogeneousSystem.from_exec_table(
                diamond, ring(3), table, link_mode=LinkHeterogeneity.PER_LINK
            )
