"""Second batch of hypothesis properties: IO round-trips, extra scheduler
validity, settle idempotence, and serialization classification laws."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    HeterogeneousSystem,
    TaskClass,
    classify_tasks,
    clique,
    critical_path,
    hypercube,
    ring,
    schedule_bsa,
    schedule_cpop,
    schedule_heft,
    serialize,
    settle,
)
from repro.core.bsa import BSAOptions
from repro.graph.io import graph_from_json, graph_to_json
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.validator import schedule_violations
from repro.workloads.granularity import apply_granularity
from repro.workloads.random_graphs import random_layered_graph

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

graph_params = st.tuples(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=0, max_value=5_000),
)


@settings(max_examples=50, deadline=None)
@given(params=graph_params)
def test_graph_json_round_trip(params):
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    back = graph_from_json(graph_to_json(graph))
    assert back.tasks() == graph.tasks()
    assert back.edges() == graph.edges()
    for t in graph.tasks():
        assert back.cost(t) == graph.cost(t)
    for u, v in graph.edges():
        assert back.comm_cost(u, v) == graph.comm_cost(u, v)


@slow
@given(params=graph_params)
def test_schedule_io_round_trip_property(params):
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, 1.0, seed=seed)
    system = HeterogeneousSystem.sample(graph, ring(4), het_range=(1, 10), seed=seed)
    sched = schedule_bsa(system, BSAOptions(n_sweeps=1))
    back = schedule_from_dict(schedule_to_dict(sched), system)
    assert schedule_violations(back) == []
    assert back.schedule_length() == pytest.approx(sched.schedule_length())


@slow
@given(params=graph_params, topo=st.sampled_from(["ring", "hypercube", "clique"]))
def test_heft_cpop_always_valid(params, topo):
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, 1.0, seed=seed)
    topology = {"ring": ring(4), "hypercube": hypercube(4), "clique": clique(4)}[topo]
    system = HeterogeneousSystem.sample(graph, topology, het_range=(1, 20), seed=seed)
    assert schedule_violations(schedule_heft(system)) == []
    assert schedule_violations(schedule_cpop(system)) == []


@slow
@given(params=graph_params)
def test_settle_idempotent_property(params):
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, 1.0, seed=seed)
    system = HeterogeneousSystem.sample(graph, ring(4), het_range=(1, 10), seed=seed)
    sched = schedule_bsa(system, BSAOptions(n_sweeps=1))
    snapshot = {t: (s.start, s.finish) for t, s in sched.slots.items()}
    settle(sched)
    assert snapshot == {t: (s.start, s.finish) for t, s in sched.slots.items()}


@settings(max_examples=50, deadline=None)
@given(params=graph_params)
def test_classification_laws(params):
    """CP tasks form a path; IB tasks are CP ancestors; OB tasks are not."""
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    cp = critical_path(graph)
    classes = classify_tasks(graph, cp)
    cp_set = set(cp)
    for t, cls in classes.items():
        is_ancestor = bool(graph.descendants(t) & cp_set)
        if cls is TaskClass.CP:
            assert t in cp_set
        elif cls is TaskClass.IB:
            assert t not in cp_set and is_ancestor
        else:
            assert t not in cp_set and not is_ancestor


@settings(max_examples=50, deadline=None)
@given(params=graph_params, proc_seed=st.integers(0, 100))
def test_serialization_cp_first_property(params, proc_seed):
    """CP tasks appear in CP order, and nothing that is not an ancestor of
    a CP task precedes that CP task unnecessarily... at minimum: the first
    task of the order is the CP entry task."""
    n, seed = params
    graph = random_layered_graph(n, seed=seed)
    order = serialize(graph)
    cp = critical_path(graph)
    positions = {t: i for i, t in enumerate(order)}
    # CP tasks keep their relative order
    assert [t for t in order if t in set(cp)] == cp
    # the serial order starts with the CP's entry task
    assert order[0] == cp[0]
    # every task before a CP task is one of its ancestors or an earlier
    # CP task's ancestor — i.e. never an out-branch task
    classes = classify_tasks(graph, cp)
    last_cp_pos = positions[cp[-1]]
    for t, i in positions.items():
        if i < last_cp_pos and classes[t] is TaskClass.OB:
            pytest.fail(f"OB task {t} serialized before the last CP task")
