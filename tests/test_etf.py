"""Tests for the ETF baseline."""

import pytest

from repro import HeterogeneousSystem, TaskGraph, chain, schedule_etf
from repro.schedule.validator import schedule_violations


class TestETF:
    def test_valid_on_fixtures(self, paper_system, small_random_system):
        for system in (paper_system, small_random_system):
            sched = schedule_etf(system)
            assert schedule_violations(sched) == []
            assert sched.algorithm == "ETF"
            assert len(sched.slots) == system.graph.n_tasks

    def test_deterministic(self, small_random_system):
        a = schedule_etf(small_random_system)
        b = schedule_etf(small_random_system)
        assert a.schedule_length() == b.schedule_length()

    def test_earliest_start_greed(self):
        """ETF picks the globally earliest-starting pair each step."""
        g = TaskGraph(name="ab")
        g.add_task("A", 10.0)
        g.add_task("B", 20.0)
        g.add_edge("A", "B", 5.0)
        table = {"A": [10.0, 10.0], "B": [20.0, 20.0]}
        system = HeterogeneousSystem.from_exec_table(g, chain(2), table)
        sched = schedule_etf(system)
        # A at t=0 (either proc; tie -> P0); B earliest locally at t=10
        assert sched.slots["A"].start == 0.0
        assert sched.proc_of("B") == sched.proc_of("A")
        assert sched.slots["B"].start == pytest.approx(10.0)

    def test_ties_broken_by_static_level(self):
        """Two ready tasks, same earliest start: the higher level goes first."""
        g = TaskGraph(name="levels")
        g.add_task("low", 10.0)
        g.add_task("high", 10.0)
        g.add_task("tail", 30.0)
        g.add_edge("high", "tail", 1.0)
        # connect 'low' so the graph is weakly connected
        g.add_edge("low", "tail", 1.0)
        table = {t: [g.cost(t), g.cost(t)] for t in g.tasks()}
        system = HeterogeneousSystem.from_exec_table(g, chain(2), table)
        sched = schedule_etf(system)
        assert schedule_violations(sched) == []
        # both entries start at 0 on different processors; the schedule is
        # tight regardless of which proc each lands on
        assert sched.slots["low"].start == 0.0
        assert sched.slots["high"].start == 0.0

    def test_runner_integration(self):
        from repro.experiments.config import Cell
        from repro.experiments.runner import run_cell

        cell = Cell("random", "random", 20, 1.0, "ring", "etf", n_procs=4)
        result = run_cell(cell, use_cache=False)
        assert result.schedule_length > 0
