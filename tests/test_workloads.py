"""Tests for workload generators (regular apps, random graphs, granularity)."""

import pytest

from repro import apply_granularity, validate_graph
from repro.errors import WorkloadError
from repro.graph.analysis import granularity as measure_granularity
from repro.workloads import (
    gaussian_elimination,
    gaussian_size,
    laplace_size,
    laplace_solver,
    lu_decomposition,
    lu_size,
    mean_value_analysis,
    mva_size,
    random_layered_graph,
    random_graph,
    regular_graph,
)
from repro.workloads.suites import _solve_param, paper_granularities, paper_sizes


class TestRegularGenerators:
    @pytest.mark.parametrize("builder,size_fn,param", [
        (gaussian_elimination, gaussian_size, 8),
        (lu_decomposition, lu_size, 6),
        (laplace_solver, laplace_size, 6),
        (mean_value_analysis, mva_size, 8),
    ], ids=["gauss", "lu", "laplace", "mva"])
    def test_structure_and_size(self, builder, size_fn, param):
        g = builder(param)
        validate_graph(g)
        assert g.n_tasks == size_fn(param)
        # single source wavefronts: at least one entry and one exit
        assert g.sources() and g.sinks()

    @pytest.mark.parametrize("builder", [
        gaussian_elimination, lu_decomposition, laplace_solver,
        mean_value_analysis,
    ])
    def test_mean_exec_cost_scaled(self, builder):
        g = builder(7, mean_exec=150.0)
        assert g.mean_exec_cost() == pytest.approx(150.0)

    def test_too_small_rejected(self):
        for builder in (gaussian_elimination, lu_decomposition,
                        laplace_solver, mean_value_analysis):
            with pytest.raises(WorkloadError):
                builder(1)

    def test_gaussian_pivot_chain(self):
        g = gaussian_elimination(4)
        # P1 feeds all of row 1's updates
        assert set(g.successors(("P", 1))) == {("U", 1, 2), ("U", 1, 3), ("U", 1, 4)}
        # U(1,2) completes the next pivot
        assert ("P", 2) in g.successors(("U", 1, 2))

    def test_laplace_is_wavefront(self):
        g = laplace_solver(4)
        assert g.sources() == [("L", 0, 0)]
        assert g.sinks() == [("L", 3, 3)]
        assert g.in_degree(("L", 2, 2)) == 2

    def test_mva_triangle(self):
        g = mean_value_analysis(4)
        assert g.n_tasks == 10
        assert g.in_degree(("M", 4, 2)) == 2
        assert g.in_degree(("M", 4, 1)) == 1


class TestSizeSolver:
    def test_solve_param_accuracy(self):
        for target in paper_sizes():
            for size_fn in (gaussian_size, lu_size, laplace_size, mva_size):
                param = _solve_param(size_fn, target)
                achieved = size_fn(param)
                # within one structural step of the target
                assert abs(achieved - target) <= max(
                    abs(size_fn(param + 1) - target),
                    abs(size_fn(max(2, param - 1)) - target),
                )

    def test_regular_graph_size_close(self):
        for app in ("gauss", "lu", "laplace", "mva"):
            g = regular_graph(app, 200, granularity=1.0)
            assert 140 <= g.n_tasks <= 260

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError):
            regular_graph("quicksort", 100)

    def test_extension_apps_resolvable(self):
        # fft/forkjoin are addressable through the same entry point
        assert regular_graph("fft", 100).n_tasks > 0
        assert regular_graph("forkjoin", 100).n_tasks > 0


class TestRandomGraphs:
    def test_connected_dag(self):
        for seed in range(5):
            g = random_layered_graph(60, seed=seed)
            validate_graph(g)
            assert g.n_tasks == 60

    def test_exec_range(self):
        g = random_layered_graph(80, seed=1, exec_range=(100, 200))
        for t in g.tasks():
            assert 100 <= g.cost(t) <= 200

    def test_deterministic(self):
        a = random_layered_graph(50, seed=9)
        b = random_layered_graph(50, seed=9)
        assert a.edges() == b.edges()
        assert [a.cost(t) for t in a.tasks()] == [b.cost(t) for t in b.tasks()]

    def test_seed_matters(self):
        a = random_layered_graph(50, seed=1)
        b = random_layered_graph(50, seed=2)
        assert a.edges() != b.edges()

    def test_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            random_layered_graph(1)


class TestGranularity:
    @pytest.mark.parametrize("target", [0.1, 1.0, 10.0])
    def test_exact_granularity(self, target):
        g = random_layered_graph(60, seed=2)
        apply_granularity(g, target, seed=2)
        assert measure_granularity(g) == pytest.approx(target)

    def test_costs_positive_and_varied(self):
        g = random_layered_graph(60, seed=3)
        apply_granularity(g, 1.0, seed=3, spread=0.5)
        costs = [g.comm_cost(u, v) for u, v in g.edges()]
        assert all(c > 0 for c in costs)
        assert max(costs) > min(costs)  # spread produced variation

    def test_zero_spread_uniform(self):
        g = random_layered_graph(40, seed=4)
        apply_granularity(g, 2.0, seed=4, spread=0.0)
        costs = {round(g.comm_cost(u, v), 9) for u, v in g.edges()}
        assert len(costs) == 1

    def test_bad_granularity_rejected(self):
        g = random_layered_graph(10, seed=0)
        with pytest.raises(WorkloadError):
            apply_granularity(g, 0.0)
        with pytest.raises(WorkloadError):
            apply_granularity(g, 1.0, spread=1.5)

    def test_paper_grids(self):
        assert paper_sizes() == list(range(50, 501, 50))
        assert paper_granularities() == [0.1, 1.0, 10.0]

    def test_random_graph_wrapper(self):
        g = random_graph(70, granularity=0.5, seed=5)
        assert g.n_tasks == 70
        assert measure_granularity(g) == pytest.approx(0.5)
