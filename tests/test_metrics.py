"""Tests for schedule metrics."""

import pytest

from repro import compute_metrics, schedule_bsa, schedule_serial


class TestMetrics:
    def test_serial_schedule_metrics(self, small_random_system):
        sched = schedule_serial(small_random_system)
        m = compute_metrics(sched)
        assert m.schedule_length == pytest.approx(m.serial_best)
        assert m.speedup == pytest.approx(1.0)
        assert m.total_comm_cost == 0.0
        assert m.n_hops == 0
        # exactly one processor fully busy
        utils = sorted(m.proc_utilization.values())
        assert utils[-1] == pytest.approx(1.0)
        assert utils[0] == 0.0

    def test_parallel_schedule_speedup(self, small_random_system):
        sched = schedule_bsa(small_random_system)
        m = compute_metrics(sched)
        assert m.speedup >= 1.0
        # on heterogeneous systems "efficiency" vs the single best serial
        # processor can exceed 1: parallel runs exploit per-task fast procs
        assert m.efficiency > 0

    def test_lower_bound_holds(self, small_random_system):
        for scheduler in (schedule_bsa, schedule_serial):
            m = compute_metrics(scheduler(small_random_system))
            assert m.schedule_length >= m.cp_exec_lower_bound - 1e-9
            assert m.normalized_sl >= 1.0

    def test_comm_accounting(self, paper_system):
        sched = schedule_bsa(paper_system)
        m = compute_metrics(sched)
        expected = sum(
            h.duration for r in sched.routes.values() for h in r.hops
        )
        assert m.total_comm_cost == pytest.approx(expected)
        assert m.n_routed_messages == sum(
            1 for r in sched.routes.values() if not r.is_local
        )

    def test_utilization_bounds(self, small_random_system):
        m = compute_metrics(schedule_bsa(small_random_system))
        for u in m.proc_utilization.values():
            assert 0.0 <= u <= 1.0 + 1e-9
        for u in m.link_utilization.values():
            assert 0.0 <= u <= 1.0 + 1e-9
        assert 0.0 <= m.mean_proc_utilization <= 1.0
        assert 0.0 <= m.mean_link_utilization <= 1.0
