"""Tests for ASCII rendering (Gantt charts and report tables)."""

from repro import render_gantt, schedule_bsa
from repro.schedule.schedule import Schedule
from repro.util.tables import format_series, format_table


class TestGantt:
    def test_empty_schedule(self, paper_system):
        assert render_gantt(Schedule(paper_system)) == "(empty schedule)"

    def test_all_columns_present(self, paper_system):
        sched = schedule_bsa(paper_system)
        out = render_gantt(sched)
        for p in range(4):
            assert f"P{p}" in out
        for l in paper_system.topology.links:
            assert f"L{l[0]}-{l[1]}" in out
        assert "schedule length" in out

    def test_tasks_appear(self, paper_system):
        sched = schedule_bsa(paper_system)
        out = render_gantt(sched, col_width=7)
        # every task label shows up somewhere
        for t in paper_system.graph.tasks():
            assert t in out

    def test_links_hidden(self, paper_system):
        sched = schedule_bsa(paper_system)
        out = render_gantt(sched, show_links=False)
        assert "L0-1" not in out

    def test_row_count_matches_height(self, paper_system):
        sched = schedule_bsa(paper_system)
        out = render_gantt(sched, height=10)
        # header + separator + 11 time rows + separator + footer
        assert len(out.splitlines()) == 15


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_none_rendered_as_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_format_series_with_ratio(self):
        out = format_series(
            "size", [50, 100],
            {"dls": [100.0, 200.0], "bsa": [80.0, 150.0]},
            ratio_of=("bsa", "dls"),
        )
        assert "bsa/dls" in out
        assert "0.800" in out
        assert "0.750" in out

    def test_format_series_plain(self):
        out = format_series("g", [0.1, 1.0], {"only": [5.0, 6.0]})
        assert "only" in out and "0.1" in out
