"""Tests for extension features: E-cube routing, FFT/fork-join workloads,
schedule IO, and critical-chain analysis."""

import pytest

from repro import (
    HeterogeneousSystem,
    RoutingTable,
    chain_breakdown,
    critical_chain,
    ecube_path,
    fft_butterfly,
    fork_join,
    hypercube,
    ring,
    schedule_bsa,
    schedule_dls,
    schedule_from_json,
    schedule_to_json,
    validate_graph,
    validate_schedule,
)
from repro.errors import RoutingError, SchedulingError, WorkloadError
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.validator import schedule_violations
from repro.workloads.fft import fft_size
from repro.workloads.forkjoin import forkjoin_size


class TestEcubeRouting:
    def test_path_corrects_bits_lsb_first(self):
        topo = hypercube(8)
        assert ecube_path(topo, 0b000, 0b101) == [0b000, 0b001, 0b101]
        assert ecube_path(topo, 0b111, 0b000) == [0b111, 0b110, 0b100, 0b000]

    def test_path_length_is_popcount(self):
        topo = hypercube(16)
        for src in range(16):
            for dst in range(16):
                path = ecube_path(topo, src, dst)
                assert len(path) - 1 == bin(src ^ dst).count("1")
                for a, b in zip(path, path[1:]):
                    assert topo.has_link(a, b)

    def test_same_node(self):
        assert ecube_path(hypercube(4), 2, 2) == [2]

    def test_non_hypercube_rejected(self):
        with pytest.raises(RoutingError):
            ecube_path(ring(8), 0, 3)

    def test_table_strategy(self):
        table = RoutingTable(hypercube(8), strategy="ecube")
        assert table.path(0, 5) == [0, 1, 5]
        # deterministic dimension order differs from BFS tie-breaks only
        # in route choice, never in length
        bfs = RoutingTable(hypercube(8))
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert table.hop_distance(a, b) == bfs.hop_distance(a, b)

    def test_bad_strategy_rejected(self):
        with pytest.raises(RoutingError):
            RoutingTable(hypercube(4), strategy="warp")

    def test_ecube_on_ring_rejected(self):
        with pytest.raises(RoutingError):
            RoutingTable(ring(8), strategy="ecube")


class TestFFTWorkload:
    def test_structure(self):
        g = fft_butterfly(8)
        validate_graph(g)
        assert g.n_tasks == fft_size(8) == 32
        # every non-entry task has exactly two inputs (self + partner)
        for s in range(1, 4):
            for i in range(8):
                assert g.in_degree(("F", s, i)) == 2

    def test_entry_exit_counts(self):
        g = fft_butterfly(4)
        assert len(g.sources()) == 4
        assert len(g.sinks()) == 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(WorkloadError):
            fft_butterfly(6)
        with pytest.raises(WorkloadError):
            fft_size(0)

    def test_schedulable(self):
        g = fft_butterfly(8)
        system = HeterogeneousSystem.sample(g, hypercube(4), het_range=(1, 5), seed=0)
        validate_schedule(schedule_bsa(system))


class TestForkJoinWorkload:
    def test_structure(self):
        g = fork_join(3, 5)
        validate_graph(g)
        assert g.n_tasks == forkjoin_size(3, 5) == 3 * 7 + 1
        assert g.out_degree(("F", 1)) == 5
        assert g.in_degree(("J", 1)) == 5

    def test_single_section(self):
        g = fork_join(1, 2)
        assert g.sources() == [("J", 0)]
        assert g.sinks() == [("J", 1)]

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            fork_join(0, 3)
        with pytest.raises(WorkloadError):
            forkjoin_size(2, 0)

    def test_schedulable(self):
        g = fork_join(2, 6)
        system = HeterogeneousSystem.sample(g, ring(4), het_range=(1, 5), seed=1)
        validate_schedule(schedule_dls(system))


class TestScheduleIO:
    def test_round_trip(self, small_random_system):
        sched = schedule_bsa(small_random_system)
        text = schedule_to_json(sched)
        back = schedule_from_json(text, small_random_system)
        assert schedule_violations(back) == []
        assert back.schedule_length() == pytest.approx(sched.schedule_length())
        assert {t: s.proc for t, s in back.slots.items()} == {
            t: s.proc for t, s in sched.slots.items()
        }

    def test_dict_contains_summary(self, paper_system):
        sched = schedule_bsa(paper_system)
        data = schedule_to_dict(sched)
        assert data["algorithm"] == "BSA"
        assert data["schedule_length"] == pytest.approx(sched.schedule_length())
        assert len(data["tasks"]) == 9
        assert len(data["messages"]) == 12

    def test_bad_version_rejected(self, paper_system):
        sched = schedule_bsa(paper_system)
        data = schedule_to_dict(sched)
        data["version"] = 99
        with pytest.raises(SchedulingError):
            schedule_from_dict(data, paper_system)

    def test_unknown_task_rejected(self, paper_system):
        sched = schedule_bsa(paper_system)
        data = schedule_to_dict(sched)
        data["tasks"][0]["task"] = "'T99'"
        with pytest.raises(SchedulingError):
            schedule_from_dict(data, paper_system)


class TestCriticalChain:
    def test_chain_ends_at_makespan(self, small_random_system):
        sched = schedule_bsa(small_random_system)
        chain = critical_chain(sched)
        assert chain[-1].finish == pytest.approx(sched.schedule_length())

    def test_chain_is_connected_and_causal(self, small_random_system):
        sched = schedule_dls(small_random_system)
        graph = small_random_system.graph
        chain = critical_chain(sched)
        for earlier, later in zip(chain, chain[1:]):
            assert later.via_message == earlier.task
            assert graph.has_edge(earlier.task, later.task)
            assert later.start >= earlier.finish - 1e-9

    def test_chain_starts_at_entry(self, small_random_system):
        chain = critical_chain(schedule_bsa(small_random_system))
        assert chain[0].via_message is None
        assert chain[0].drt == 0.0

    def test_breakdown_accounts_for_makespan(self, small_random_system):
        sched = schedule_bsa(small_random_system)
        bd = chain_breakdown(sched)
        total = bd.exec_time + bd.message_wait + bd.queue_wait
        assert total == pytest.approx(bd.schedule_length, rel=1e-6)
        assert 0 <= bd.exec_fraction <= 1
        assert 0 <= bd.comm_fraction <= 1

    def test_empty_schedule(self, paper_system):
        from repro.schedule.schedule import Schedule

        assert critical_chain(Schedule(paper_system)) == []
