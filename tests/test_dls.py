"""Tests for the DLS baseline (Sih & Lee)."""

import pytest

from repro import (
    HeterogeneousSystem,
    clique,
    ring,
    schedule_dls,
    validate_schedule,
)
from repro.baselines.dls import DLSOptions
from repro.graph.analysis import static_b_levels


class TestDLS:
    def test_valid_on_paper_system(self, paper_system):
        sched = schedule_dls(paper_system)
        validate_schedule(sched)
        assert len(sched.slots) == 9
        assert sched.algorithm == "DLS"

    def test_valid_on_random_system(self, small_random_system):
        sched = schedule_dls(small_random_system)
        validate_schedule(sched)

    def test_deterministic(self, small_random_system):
        a = schedule_dls(small_random_system)
        b = schedule_dls(small_random_system)
        assert a.schedule_length() == b.schedule_length()
        assert {t: s.proc for t, s in a.slots.items()} == {
            t: s.proc for t, s in b.slots.items()
        }

    def test_link_insertion_never_hurts(self, small_random_system):
        append = schedule_dls(small_random_system, DLSOptions(link_insertion=False))
        insert = schedule_dls(small_random_system, DLSOptions(link_insertion=True))
        validate_schedule(insert)
        assert insert.schedule_length() <= append.schedule_length() + 1e-6

    def test_static_level_uses_median_costs(self, paper_system):
        median = {t: paper_system.median_exec_cost(t) for t in paper_system.graph.tasks()}
        sl = static_b_levels(paper_system.graph, exec_cost=lambda t: median[t])
        # exit task's level is its own median cost
        assert sl["T9"] == pytest.approx(median["T9"])
        assert sl["T5"] == pytest.approx(median["T5"])
        # levels grow along reverse paths
        assert sl["T1"] > sl["T7"] > sl["T9"]

    def test_heterogeneity_delta_chases_fast_procs(self):
        from repro import TaskGraph

        g = TaskGraph(name="single-ish")
        g.add_task("big", 100.0)
        g.add_task("tail", 1.0)
        g.add_edge("big", "tail", 0.1)
        table = {"big": [1000.0, 1000.0, 100.0, 1000.0],
                 "tail": [1.0, 1.0, 1.0, 1.0]}
        system = HeterogeneousSystem.from_exec_table(g, clique(4), table)
        sched = schedule_dls(system)
        assert sched.proc_of("big") == 2

    def test_respects_precedence_order(self, small_random_system):
        """Scheduling order must be a valid topological order."""
        sched = schedule_dls(small_random_system)
        graph = small_random_system.graph
        for u, v in graph.edges():
            su, sv = sched.slots[u], sched.slots[v]
            assert sv.start >= su.finish - 1e-9 or su.proc != sv.proc

    def test_messages_use_shortest_paths(self, small_random_system):
        from repro.network.routing import RoutingTable

        sched = schedule_dls(small_random_system)
        table = RoutingTable(small_random_system.topology)
        for edge, route in sched.routes.items():
            if route.is_local:
                continue
            src = sched.proc_of(edge[0])
            dst = sched.proc_of(edge[1])
            assert len(route.hops) == table.hop_distance(src, dst)
