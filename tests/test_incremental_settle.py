"""Tests for the incremental settle engine and the undo-log rollback.

The cross-mode byte-identity of whole BSA runs lives in
``tests/test_hotpath_equivalence.py``; this file tests the machinery
directly:

* ``settle_incremental`` after each committed migration must leave the
  schedule exactly as a full Kahn pass would (times *and* occupant
  orders), including the dict insertion order the serializer exposes;
* ``ScheduleTxn.rollback`` must reverse any mix of structural mutations
  and recorded time writes bit-for-bit;
* the engine's guard rails: zero-cost-edge graphs take the full pass,
  contradictory orders still raise ``CycleError``, transactions cannot
  be double-opened.
"""

from __future__ import annotations

import pytest

from repro.core.bsa import BSAOptions, schedule_bsa
from repro.core.migration import commit_migration, evaluate_migration
from repro.core.serialization import serial_injection
from repro.errors import CycleError, SchedulingError
from repro.experiments.config import Cell
from repro.experiments.runner import build_cell_system
from repro.schedule.io import schedule_to_json
from repro.schedule.settle import settle, settle_incremental
from repro.schedule.validator import validate_schedule
from repro.util.intervals import hotpath_mode, set_hotpath_mode


@pytest.fixture
def incremental_mode():
    initial = hotpath_mode()
    set_hotpath_mode("incremental")
    yield
    set_hotpath_mode(initial)


def _state_fingerprint(sched):
    """Every observable bit of schedule state, including dict order."""
    return (
        [(t, s.proc, s.start, s.finish) for t, s in sched.slots.items()],
        {p: list(o) for p, o in sched.proc_order.items()},
        [
            (e, [(h.src, h.dst, h.start, h.finish) for h in r.hops])
            for e, r in sched.routes.items()
        ],
        {
            ch: [(h.edge, h.src, h.dst, h.start, h.finish) for h in hops]
            for ch, hops in sched.link_order.items()
        },
    )


class TestIncrementalSettleEquivalence:
    @pytest.mark.parametrize(
        "cell",
        [
            Cell("regular", "gauss", 40, 1.0, "ring", "bsa",
                 n_procs=8, graph_seed=3, system_seed=3),
            Cell("random", "random", 30, 0.1, "hypercube", "bsa",
                 n_procs=8, graph_seed=7, system_seed=7),
            Cell("random", "random", 30, 1.0, "torus", "bsa", n_procs=9,
                 graph_seed=13, system_seed=13, duplex="full",
                 bandwidth_skew=8.0),
        ],
        ids=["ring", "hypercube", "torus-full-skew"],
    )
    def test_every_commit_matches_full_settle(self, cell, incremental_mode,
                                              monkeypatch):
        """After *each* incremental settle during a BSA run, a full Kahn
        pass over a deep copy must produce identical times — the
        strongest per-step check the differential harness allows."""
        import repro.core.migration as mig
        from repro.schedule import settle as settle_pkg  # noqa: F401
        import importlib

        settle_mod = importlib.import_module("repro.schedule.settle")
        orig = settle_mod.settle_incremental
        checked = {"n": 0}

        def checking(schedule, seed_tasks, seed_hops):
            out = orig(schedule, seed_tasks, seed_hops)
            dup = schedule.copy()
            settle_mod._settle_fast(dup)
            for t, slot in schedule.slots.items():
                d = dup.slots[t]
                assert (slot.start, slot.finish) == (d.start, d.finish), t
            for e, r in schedule.routes.items():
                for h, dh in zip(r.hops, dup.routes[e].hops):
                    assert (h.start, h.finish) == (dh.start, dh.finish), e
            checked["n"] += 1
            return out

        monkeypatch.setattr(mig, "settle_incremental", checking)
        sched = schedule_bsa(build_cell_system(cell), BSAOptions())
        validate_schedule(sched)
        assert checked["n"] > 0  # the incremental path actually ran

    def test_direct_commit_sequence_identical(self, paper_system,
                                              incremental_mode):
        """Hand-driven migrations (outside BSA) settle incrementally via
        the anonymous transaction and stay byte-identical to fast mode."""
        blobs = {}
        for mode in ("fast", "incremental", "array"):
            set_hotpath_mode(mode)
            _, sched = serial_injection(paper_system)
            for task, dst in [("T5", 3), ("T1", 2), ("T5", 0)]:
                plan = evaluate_migration(sched, task, dst)
                commit_migration(sched, plan)
            validate_schedule(sched)
            blobs[mode] = schedule_to_json(sched)
        assert blobs["fast"] == blobs["incremental"] == blobs["array"]

    def test_zero_cost_edge_graph_takes_full_pass(self, incremental_mode):
        """Graphs with a 0-cost message fall back to the full pass (the
        cycle-growth argument needs positive hop durations) and still
        schedule identically across modes."""
        from repro.graph.model import TaskGraph
        from repro.network.system import HeterogeneousSystem
        from repro.network.topology import ring

        def build():
            g = TaskGraph(name="zerocomm")
            for t in "abcd":
                g.add_task(t, 10.0)
            g.add_edge("a", "b", 0.0)
            g.add_edge("a", "c", 5.0)
            g.add_edge("b", "d", 0.0)
            g.add_edge("c", "d", 5.0)
            return HeterogeneousSystem.sample(g, ring(4), het_range=(1, 2), seed=1)

        assert build().graph.has_zero_cost_edge()
        blobs = {}
        for mode in ("fast", "incremental", "array"):
            set_hotpath_mode(mode)
            sched = schedule_bsa(build(), BSAOptions())
            validate_schedule(sched)
            blobs[mode] = schedule_to_json(sched)
        assert blobs["fast"] == blobs["incremental"] == blobs["array"]


class TestUndoLogRollback:
    def test_rollback_restores_everything(self, paper_system):
        """A transaction spanning every mutator kind rolls back to a
        bit-identical state — including dict insertion order."""
        _, sched = serial_injection(paper_system)
        plan = evaluate_migration(sched, "T5", 3)
        commit_migration(sched, plan)  # give the schedule some routes
        before = _state_fingerprint(sched)

        txn = sched.begin_txn()
        sched.remove_task("T9")
        sched.place_task("T9", 1, start=123.0)
        edge = next(e for e, r in sched.routes.items() if not r.is_local)
        path = sched.routes[edge].procs
        sched.clear_route(edge)
        sched.set_route(edge, path, hop_starts=[0.0] * (len(path) - 1))
        sched.mark_local(("T1", "T9"))
        # simulate a settle write-back recorded in the undo log
        slot = sched.slots["T2"]
        txn.record_time(slot, slot.start, slot.finish)
        slot.start, slot.finish = -1.0, -0.5

        assert _state_fingerprint(sched) != before
        txn.rollback()
        assert _state_fingerprint(sched) == before
        assert sched.txn is None
        validate_schedule(sched)

    def test_rollback_restores_dict_insertion_order(self, paper_system):
        _, sched = serial_injection(paper_system)
        keys_before = (list(sched.slots), list(sched.routes))
        txn = sched.begin_txn()
        sched.remove_task("T3")
        sched.place_task("T3", 2, start=0.0)
        txn.rollback()
        assert (list(sched.slots), list(sched.routes)) == keys_before

    def test_double_begin_rejected(self, paper_system):
        _, sched = serial_injection(paper_system)
        sched.begin_txn()
        with pytest.raises(SchedulingError):
            sched.begin_txn()
        sched.commit_txn()
        with pytest.raises(SchedulingError):
            sched.commit_txn()

    def test_commit_keeps_mutations(self, paper_system):
        _, sched = serial_injection(paper_system)
        sched.begin_txn()
        sched.remove_task("T9")
        sched.place_task("T9", 1, start=50.0)
        sched.commit_txn()
        assert sched.proc_of("T9") == 1


class TestSettleIncrementalDirect:
    def test_empty_seeds_is_noop(self, paper_system):
        _, sched = serial_injection(paper_system)
        before = _state_fingerprint(sched)
        settle_incremental(sched, set(), [])
        assert _state_fingerprint(sched) == before

    def test_detects_contradiction(self, homogeneous_system,
                                   incremental_mode):
        """Contradictory proc orders raise CycleError from the
        incremental path exactly like the full pass."""
        from repro.schedule.schedule import Schedule

        s = Schedule(homogeneous_system)
        # place the chain a -> b -> d backwards on one processor
        for t, pos in [("d", 0), ("b", 1), ("a", 2)]:
            s.place_task(t, 0, start=float(pos), position=pos)
        s.place_task("c", 1, start=0.0)
        for e in homogeneous_system.graph.edges():
            s.mark_local(e)
        with pytest.raises(CycleError):
            settle(s)
        with pytest.raises(CycleError):
            settle_incremental(s, set(s.slots), [])
