"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = os.path.join(REPO_ROOT, "examples", "graphs")


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            build_parser().parse_args(["--version"])
        assert e.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.algorithm == "bsa"
        assert args.topology == "hypercube"
        assert args.size == 100

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "-a", "magic"])


class TestCommands:
    def test_info(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "scale" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "first pivot" in out
        assert "P2" in out
        assert "BSA schedule length" in out

    def test_schedule_small(self, capsys):
        rc = main([
            "schedule", "-a", "bsa", "-w", "random", "-n", "25",
            "-t", "ring", "-p", "4", "--gantt", "--gantt-height", "12",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SL" in out and "speedup" in out
        assert "P0" in out  # gantt rendered

    def test_schedule_dls(self, capsys):
        rc = main([
            "schedule", "-a", "dls", "-w", "gauss", "-n", "30",
            "-t", "clique", "-p", "4",
        ])
        assert rc == 0
        assert "DLS" in capsys.readouterr().out

    def test_schedule_etf(self, capsys):
        # etf was missing from the schedule choices before PR 4
        rc = main([
            "schedule", "-a", "etf", "-w", "random", "-n", "20",
            "-t", "ring", "-p", "4",
        ])
        assert rc == 0
        assert "ETF" in capsys.readouterr().out


class TestScheduleGraph:
    def test_schedule_stg_file(self, capsys):
        rc = main([
            "schedule", "--graph", os.path.join(CORPUS, "forkjoin.stg"),
            "-a", "bsa", "-t", "ring", "-p", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forkjoin(d=3,w=4,g=1)" in out
        assert "SL" in out

    def test_schedule_trace_pins_procs(self, capsys):
        rc = main([
            "schedule", "--graph", os.path.join(CORPUS, "ge_trace.json"),
            "-a", "heft", "-t", "hypercube",
        ])
        assert rc == 0
        assert "hypercube8" in capsys.readouterr().out

    def test_schedule_trace_wrong_procs_fails(self, capsys):
        rc = main([
            "schedule", "--graph", os.path.join(CORPUS, "ge_trace.json"),
            "-a", "heft", "-t", "hypercube", "-p", "16",
        ])
        assert rc == 2
        assert "cannot apply" in capsys.readouterr().err

    def test_schedule_missing_file_fails(self, capsys):
        # unreadable input files exit through the error table as "io"
        rc = main(["schedule", "--graph", "/nonexistent/g.stg"])
        assert rc == 3

    def test_schedule_disconnected_fails_with_hint(self, capsys, tmp_path):
        # the schedulers themselves assume a connected DAG, so there is
        # no --allow-disconnected on schedule; the error points at the
        # convert escape hatch instead
        f = tmp_path / "disc.dot"
        f.write_text(
            "digraph d { 0 [cost=1.0]; 1 [cost=1.0]; 2 [cost=1.0]; "
            "3 [cost=1.0]; 0 -> 1 [comm=1.0]; 2 -> 3 [comm=1.0]; }"
        )
        rc = main(["schedule", "--graph", str(f), "-t", "ring", "-p", "4"])
        assert rc == 6  # DisconnectedGraphError's documented exit code
        err = capsys.readouterr().err
        assert "connected DAG" in err
        assert "repro convert --allow-disconnected" in err

    def test_schedule_graph_explicit_zero_procs_errors(self, capsys):
        # -p 0 must not silently fall back to the default 16
        rc = main([
            "schedule", "--graph", os.path.join(CORPUS, "forkjoin.stg"),
            "-t", "ring", "-p", "0",
        ])
        assert rc == 7  # TopologyError's documented exit code
        assert ">= 3 processors" in capsys.readouterr().err

    def test_schedule_graph_warns_about_generator_flags(self, capsys):
        rc = main([
            "schedule", "--graph", os.path.join(CORPUS, "forkjoin.stg"),
            "-t", "ring", "-p", "8", "-n", "500", "-g", "10",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "--size" in err and "--granularity" in err
        assert "ignored" in err

    def test_schedule_graph_all_algorithms(self, capsys):
        for algorithm in ("bsa", "dls", "heft", "cpop", "etf"):
            rc = main([
                "schedule", "--graph",
                os.path.join(CORPUS, "series_parallel.dot"),
                "-a", algorithm, "-t", "ring", "-p", "4",
            ])
            assert rc == 0, algorithm


class TestConvert:
    def test_convert_chain_round_trips(self, capsys, tmp_path):
        from repro.graph.interchange import graphs_equal, load_workload

        src = os.path.join(CORPUS, "forkjoin.stg")
        steps = [
            (src, str(tmp_path / "a.trace.json")),
            (str(tmp_path / "a.trace.json"), str(tmp_path / "b.dot")),
            (str(tmp_path / "b.dot"), str(tmp_path / "c.stg")),
        ]
        for a, b in steps:
            assert main(["convert", a, b]) == 0
        out = capsys.readouterr().out
        assert "19 tasks, 27 edges" in out
        assert graphs_equal(
            load_workload(src).graph,
            load_workload(str(tmp_path / "c.stg")).graph,
            check_name=True,
        )

    def test_convert_reports_vector_loss(self, capsys, tmp_path):
        rc = main([
            "convert", os.path.join(CORPUS, "ge_trace.json"),
            str(tmp_path / "ge.stg"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "8-processor cost vectors" in captured.out
        assert "cannot carry" in captured.err

    def test_convert_rejects_cycle(self, capsys, tmp_path):
        bad = tmp_path / "cycle.dot"
        bad.write_text(
            "digraph c { 0 [cost=1.0]; 1 [cost=1.0]; "
            "0 -> 1 [comm=1.0]; 1 -> 0 [comm=1.0]; }"
        )
        assert main(["convert", str(bad), str(tmp_path / "o.stg")]) == 5
        assert "repro convert:" in capsys.readouterr().err

    def test_convert_missing_input(self, capsys, tmp_path):
        assert main(["convert", "/no/such.stg", str(tmp_path / "o.dot")]) == 3

    def test_convert_default_cost_for_foreign_dot(self, capsys, tmp_path):
        foreign = tmp_path / "plain.dot"
        foreign.write_text("digraph g { a -> b; b -> c; }")
        rc = main([
            "convert", str(foreign), str(tmp_path / "out.trace.json"),
            "--default-cost", "5", "--default-comm", "2",
        ])
        assert rc == 0
        from repro.graph.interchange import load_workload

        g = load_workload(str(tmp_path / "out.trace.json")).graph
        assert g.cost("a") == 5.0
        assert g.comm_cost("b", "c") == 2.0


class TestSimulateReplay:
    ARGS = ["simulate", "-w", "gauss", "-n", "40", "-t", "ring", "-p", "8",
            "--seed", "3", "--scenario", "f1a1s2"]

    def test_simulate_prints_event_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "static SL" in out
        assert "proc_failure" in out and "arrival" in out
        assert "replan SL" in out          # oracle comparison on by default
        assert "prefix intact" in out

    def test_simulate_no_replan_omits_oracle(self, capsys):
        assert main(self.ARGS + ["--no-replan"]) == 0
        assert "replan SL" not in capsys.readouterr().out

    def test_simulate_log_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.ARGS + ["--log", str(a)]) == 0
        assert main(self.ARGS + ["--log", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        import json

        log = json.loads(a.read_text())
        assert log["format"] == "repro-event-log"
        assert log["n_events"] == 2

    def test_simulate_export_bundle_replays(self, tmp_path, capsys):
        """The round trip: simulate a tuple-id generated workload,
        export the final schedule as a bundle (relabeled to
        interchange-safe ids), replay it through the validator."""
        bundle = tmp_path / "sim.bundle.json"
        assert main(self.ARGS + ["--export-bundle", str(bundle)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert "BSA" in out

    def test_simulate_events_file(self, tmp_path, capsys):
        """An explicit --events trace overrides scenario injection."""
        import json

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({
            "format": "repro-event-trace",
            "version": 1,
            "events": [
                {"type": "arrival", "time": 50.0, "task": "hotfix",
                 "cost": 20.0, "deps": [[["U", 1, 2], 4.0]]},
                {"type": "proc_failure", "time": 900.0, "proc": 3},
            ],
        }))
        assert main(["simulate", "-w", "gauss", "-n", "40", "-t", "ring",
                     "-p", "8", "--seed", "3", "--events", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "2 event(s)" in out and str(trace) in out

    def test_simulate_bad_scenario_fails(self, capsys):
        assert main(["simulate", "-w", "gauss", "--scenario", "zzz"]) == 2
        assert "repro simulate:" in capsys.readouterr().err

    def test_simulate_missing_events_file_fails(self, capsys):
        assert main(["simulate", "-w", "gauss",
                     "--events", "/no/such.json"]) == 3

    def test_replay_rejects_non_bundle(self, tmp_path, capsys):
        bad = tmp_path / "not_bundle.json"
        bad.write_text("{\"format\": \"something-else\"}")
        assert main(["replay", str(bad)]) == 9  # SchedulingError
        assert "repro replay:" in capsys.readouterr().err

    def test_replay_flags_corrupted_schedule(self, tmp_path, capsys):
        """Tampered times must fail the replay audit (rc 1)."""
        import json

        bundle = tmp_path / "b.json"
        assert main(["schedule", "-w", "gauss", "-n", "30", "-t", "ring",
                     "-p", "4", "--export-bundle", str(bundle)]) == 0
        capsys.readouterr()
        doc = json.loads(bundle.read_text())
        doc["schedule"]["tasks"][0]["start"] += 1e6
        doc["schedule"]["tasks"][0]["finish"] += 1e6
        bundle.write_text(json.dumps(doc))
        assert main(["replay", str(bundle)]) == 1
        assert "violation" in capsys.readouterr().err

    def test_schedule_export_bundle_generated_workload(self, tmp_path, capsys):
        """schedule --export-bundle relabels tuple ids transparently."""
        bundle = tmp_path / "sched.bundle.json"
        assert main(["schedule", "-w", "gauss", "-n", "30", "-t", "ring",
                     "-p", "4", "--export-bundle", str(bundle)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle)]) == 0
        assert "replay OK" in capsys.readouterr().out


class TestTraceProfile:
    def test_trace_from_bundle(self, tmp_path, capsys):
        import json

        bundle = tmp_path / "sched.bundle.json"
        assert main(["schedule", "-w", "gauss", "-n", "24", "-t", "ring",
                     "-p", "4", "--export-bundle", str(bundle)]) == 0
        capsys.readouterr()
        out = tmp_path / "trace.json"
        assert main(["trace", str(bundle), "-o", str(out)]) == 0
        assert "chrome trace" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        assert any(e.get("cat") == "task" for e in doc["traceEvents"])
        # without -o the trace goes to stdout
        assert main(["trace", str(bundle)]) == 0
        json.loads(capsys.readouterr().out)

    def test_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["trace", str(bad)]) != 0
        capsys.readouterr()

    def test_profile_prints_counters_and_spans(self, tmp_path, capsys):
        import json

        from repro import obs
        from repro.obs import counters as counters_mod

        was_active = counters_mod.ACTIVE
        trace = tmp_path / "spans.json"
        try:
            assert main(["profile", "-n", "24", "-t", "ring",
                         "--trace", str(trace)]) == 0
        finally:
            if not was_active:
                obs.disable()
            obs.reset()
            obs.reset_spans()
        out = capsys.readouterr().out
        assert "engine counters" in out
        assert "bsa.candidates_evaluated" in out
        assert "service.execute" in out
        json.loads(trace.read_text())
