"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            build_parser().parse_args(["--version"])
        assert e.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.algorithm == "bsa"
        assert args.topology == "hypercube"
        assert args.size == 100

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "-a", "magic"])


class TestCommands:
    def test_info(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "scale" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "first pivot" in out
        assert "P2" in out
        assert "BSA schedule length" in out

    def test_schedule_small(self, capsys):
        rc = main([
            "schedule", "-a", "bsa", "-w", "random", "-n", "25",
            "-t", "ring", "-p", "4", "--gantt", "--gantt-height", "12",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SL" in out and "speedup" in out
        assert "P0" in out  # gantt rendered

    def test_schedule_dls(self, capsys):
        rc = main([
            "schedule", "-a", "dls", "-w", "gauss", "-n", "30",
            "-t", "clique", "-p", "4",
        ])
        assert rc == 0
        assert "DLS" in capsys.readouterr().out
