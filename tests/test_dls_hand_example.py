"""DLS on a hand-computable instance: verify the dynamic-level formula.

Two identical processors joined by one link; two tasks A(10) -> B(20)
with message cost 5. By hand:

* static levels (median costs, no comm): SL*(A)=30, SL*(B)=20;
* step 1: only A ready; DL(A, P0) = 30 - max(0, 0) + 0 = 30 = DL(A, P1);
  the tie-break picks P0;
* step 2: B ready. On P0: DA=10 (local), TF=10, start 10, DL = 20-10 = 10.
  On P1: the message departs at 10, lands at 15, TF=0, start 15,
  DL = 20-15 = 5. B goes to P0; makespan 30.
"""

import pytest

from repro import HeterogeneousSystem, TaskGraph, chain, schedule_dls
from repro.schedule.validator import schedule_violations


@pytest.fixture
def two_proc_system():
    g = TaskGraph(name="ab")
    g.add_task("A", 10.0)
    g.add_task("B", 20.0)
    g.add_edge("A", "B", 5.0)
    table = {"A": [10.0, 10.0], "B": [20.0, 20.0]}
    return HeterogeneousSystem.from_exec_table(g, chain(2), table)


class TestHandExample:
    def test_placements_and_times(self, two_proc_system):
        sched = schedule_dls(two_proc_system)
        assert schedule_violations(sched) == []
        assert sched.proc_of("A") == 0
        assert sched.proc_of("B") == 0
        assert sched.slots["A"].start == 0.0
        assert sched.slots["B"].start == pytest.approx(10.0)
        assert sched.schedule_length() == pytest.approx(30.0)
        assert sched.routes[("A", "B")].is_local

    def test_remote_wins_when_local_is_slow(self):
        """Make P0 slow for B: DLS must ship B across the link."""
        g = TaskGraph(name="ab2")
        g.add_task("A", 10.0)
        g.add_task("B", 20.0)
        g.add_edge("A", "B", 5.0)
        table = {"A": [10.0, 10.0], "B": [100.0, 20.0]}
        system = HeterogeneousSystem.from_exec_table(g, chain(2), table)
        sched = schedule_dls(system)
        assert schedule_violations(sched) == []
        assert sched.proc_of("B") == 1
        # A finishes 10, message [10, 15), B runs [15, 35)
        hop = sched.routes[("A", "B")].hops[0]
        assert hop.start == pytest.approx(10.0)
        assert hop.finish == pytest.approx(15.0)
        assert sched.slots["B"].start == pytest.approx(15.0)
        assert sched.schedule_length() == pytest.approx(35.0)

    def test_link_contention_serializes_siblings(self):
        """Two messages over the same link cannot overlap."""
        g = TaskGraph(name="fan")
        g.add_task("S", 10.0)
        g.add_task("X", 50.0)
        g.add_task("Y", 50.0)
        g.add_edge("S", "X", 30.0)
        g.add_edge("S", "Y", 30.0)
        # P1 is far faster for X and Y, so DLS ships both
        table = {"S": [10.0, 10.0], "X": [500.0, 50.0], "Y": [500.0, 50.0]}
        system = HeterogeneousSystem.from_exec_table(g, chain(2), table)
        sched = schedule_dls(system)
        assert schedule_violations(sched) == []
        assert sched.proc_of("X") == 1 and sched.proc_of("Y") == 1
        hops = sorted(sched.link_order[(0, 1)], key=lambda h: h.start)
        assert len(hops) == 2
        assert hops[1].start >= hops[0].finish - 1e-9  # serialized, not parallel
