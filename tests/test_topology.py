"""Tests for processor topologies."""

import pytest

from repro import (
    Topology,
    binary_tree,
    chain,
    clique,
    hypercube,
    mesh2d,
    paper_topologies,
    random_topology,
    ring,
    star,
)
from repro.errors import TopologyError
from repro.network.topology import link_id


class TestLinkId:
    def test_canonical_order(self):
        assert link_id(3, 1) == (1, 3)
        assert link_id(1, 3) == (1, 3)

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            link_id(2, 2)


class TestBuilders:
    def test_ring(self):
        t = ring(16)
        assert t.n_procs == 16
        assert t.n_links == 16
        assert all(t.degree(p) == 2 for p in t.processors)
        assert t.diameter() == 8

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_chain(self):
        t = chain(5)
        assert t.n_links == 4
        assert t.degree(0) == 1 and t.degree(2) == 2

    def test_hypercube(self):
        t = hypercube(16)
        assert t.n_links == 32  # 16 * 4 / 2
        assert all(t.degree(p) == 4 for p in t.processors)
        assert t.diameter() == 4
        assert t.has_link(0, 1) and t.has_link(0, 8)
        assert not t.has_link(0, 3)

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            hypercube(12)

    def test_clique(self):
        t = clique(16)
        assert t.n_links == 120
        assert t.diameter() == 1

    def test_star(self):
        t = star(8)
        assert t.degree(0) == 7
        assert all(t.degree(p) == 1 for p in range(1, 8))

    def test_mesh(self):
        t = mesh2d(4, 4)
        assert t.n_procs == 16
        assert t.n_links == 24
        assert t.degree(0) == 2 and t.degree(5) == 4

    def test_tree(self):
        t = binary_tree(7)
        assert t.n_links == 6
        assert t.degree(0) == 2

    def test_random_topology_degree_bounds(self):
        for seed in range(5):
            t = random_topology(16, 2, 8, seed=seed)
            assert t.n_procs == 16
            degrees = [t.degree(p) for p in t.processors]
            assert max(degrees) <= 8
            # connectivity is guaranteed by construction (spanning tree)
            assert t.diameter() < 16

    def test_random_topology_deterministic(self):
        assert random_topology(16, seed=3).links == random_topology(16, seed=3).links

    def test_paper_topologies(self):
        topos = paper_topologies()
        assert set(topos) == {"ring", "hypercube", "clique", "random"}
        assert all(t.n_procs == 16 for t in topos.values())


class TestTopologyClass:
    def test_duplicate_link_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1), (1, 0), (1, 2)])

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError):
            Topology(4, [(0, 1), (2, 3)])

    def test_out_of_range_proc_rejected(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 5)])

    def test_neighbors_sorted(self):
        t = Topology(4, [(2, 0), (0, 3), (0, 1), (1, 2), (2, 3)])
        assert t.neighbors(0) == [1, 2, 3]

    def test_bfs_order_full_and_starts_at_root(self):
        t = ring(6)
        order = t.bfs_order(2)
        assert order[0] == 2
        assert sorted(order) == list(range(6))
        assert order == [2, 1, 3, 0, 4, 5]
