"""Tests for pivot selection and CP-driven serialization (paper §2.2)."""

import pytest

from repro import HeterogeneousSystem, TaskGraph, ring, select_pivot, serialize
from repro.core.serialization import serial_injection
from repro.graph.analysis import GraphAnalysis


class TestSerializeBasics:
    def test_serial_order_is_topological(self, diamond):
        order = serialize(diamond)
        assert diamond.is_topological(order)

    def test_all_tasks_once(self, paper_graph):
        order = serialize(paper_graph)
        assert sorted(order) == sorted(paper_graph.tasks())

    def test_single_task(self):
        g = TaskGraph()
        g.add_task("only", 3.0)
        assert serialize(g) == ["only"]

    def test_cp_tasks_early(self, chain3):
        # pure chain: serial order is the chain itself
        assert serialize(chain3) == ["x", "y", "z"]

    def test_ob_tasks_last_by_blevel(self):
        g = TaskGraph()
        g.add_task("a", 10.0)
        g.add_task("cp2", 50.0)
        g.add_task("ob_big", 40.0)
        g.add_task("ob_small", 5.0)
        g.add_edge("a", "cp2", 10.0)
        g.add_edge("a", "ob_big", 1.0)
        g.add_edge("a", "ob_small", 1.0)
        order = serialize(g)
        # CP is a->cp2; both ob tasks trail, bigger b-level first
        assert order == ["a", "cp2", "ob_big", "ob_small"]


class TestPaperSerialOrders:
    """The published serialization walkthrough (§2.2)."""

    def test_nominal_serial_order_matches_paper(self, paper_graph):
        order = serialize(paper_graph)
        assert order == ["T1", "T2", "T7", "T4", "T3", "T8", "T6", "T9", "T5"]

    def test_p2_serial_order(self, paper_system):
        order = serialize(
            paper_system.graph, exec_cost=paper_system.exec_cost_fn(1)
        )
        # Our CP wrt P2 is <T1,T7,T9> (length 226 — the very value the paper
        # itself reports), so T7 precedes T6; the paper prints
        # T1,T2,T6,T7,... because it claims CP={T1,T2,T6,T9}, inconsistent
        # with its own length. See EXPERIMENTS.md.
        assert order == ["T1", "T2", "T7", "T6", "T3", "T4", "T8", "T9", "T5"]


class TestPivotSelection:
    def test_paper_pivot_is_p2(self, paper_system):
        sel = select_pivot(paper_system)
        assert sel.pivot == 1  # P2
        assert [round(x) for x in sel.cp_lengths] == [240, 226, 228, 246]
        assert sel.cp_tasks == ("T1", "T7", "T9")

    def test_pivot_tie_prefers_lower_index(self, homogeneous_system):
        sel = select_pivot(homogeneous_system)
        assert sel.pivot == 0  # identical processors: tie -> P0

    def test_serial_order_included(self, paper_system):
        sel = select_pivot(paper_system)
        assert sel.serial_order == (
            "T1", "T2", "T7", "T6", "T3", "T4", "T8", "T9", "T5"
        )


class TestSerialInjection:
    def test_injection_is_serial_execution(self, paper_system):
        sel, sched = serial_injection(paper_system)
        # all tasks on the pivot, zero communication
        assert all(slot.proc == sel.pivot for slot in sched.slots.values())
        total = sum(
            paper_system.exec_cost(t, sel.pivot)
            for t in paper_system.graph.tasks()
        )
        assert sched.schedule_length() == pytest.approx(total)
        assert all(r.is_local for r in sched.routes.values())

    def test_injection_valid(self, paper_system):
        from repro import validate_schedule

        _, sched = serial_injection(paper_system)
        validate_schedule(sched)

    def test_injection_respects_serial_order(self, paper_system):
        sel, sched = serial_injection(paper_system)
        assert tuple(sched.proc_order[sel.pivot]) == sel.serial_order
