"""Tests for the task-graph interchange subsystem (graph/interchange.py).

The core guarantee is the round trip: for every registered format,
``read(write(g))`` is graph-equal (same ids in the same insertion order,
identical float costs, same edge set with identical communication
costs) across the randomized workload sweep; traces additionally
round-trip per-processor execution-cost tables exactly.
"""

import json
import math
import os

import pytest

from repro.errors import (
    ConfigurationError,
    CycleError,
    DisconnectedGraphError,
    GraphError,
)
from repro.graph.interchange import (
    ExternalWorkload,
    FORMATS,
    content_hash,
    convert_file,
    dumps_workload,
    format_names,
    graphs_equal,
    load_workload,
    loads_workload,
    read_dot,
    read_stg,
    read_trace,
    relabel_tasks,
    save_workload,
    sniff_format,
    write_dot,
    write_stg,
    write_trace,
)
from repro.graph.io import to_dot
from repro.graph.model import TaskGraph
from repro.network.system import HeterogeneousSystem
from repro.network.topology import hypercube, ring
from repro.workloads.forkjoin import fork_join
from repro.workloads.granularity import apply_granularity
from repro.workloads.suites import random_graph, regular_graph


def sweep_graphs():
    """The randomized workload sweep the round-trip property runs over."""
    graphs = []
    for seed in (0, 1, 2):
        for gran in (0.1, 1.0, 10.0):
            graphs.append(random_graph(30 + 10 * seed, gran, seed=seed))
    for app in ("gauss", "lu", "laplace", "mva"):
        graphs.append(relabel_tasks(regular_graph(app, 40, 1.0, seed=1)))
    fj = fork_join(2, 4)
    apply_granularity(fj, 1.0, seed=9)
    graphs.append(relabel_tasks(fj))
    return graphs


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", format_names())
    def test_randomized_sweep_round_trips(self, fmt):
        for g in sweep_graphs():
            text = dumps_workload(g, fmt)
            back = loads_workload(text, fmt)
            assert graphs_equal(g, back.graph, check_name=True), (
                f"{fmt} round trip broke {g.name}"
            )
            assert back.fmt == fmt

    @pytest.mark.parametrize("fmt", format_names())
    def test_round_trip_exact_floats(self, fmt):
        g = TaskGraph(name="floats")
        g.add_task("a", 1.0 / 3.0)
        g.add_task("b", math.pi)
        g.add_edge("a", "b", 2.0 / 7.0)
        back = loads_workload(dumps_workload(g, fmt), fmt).graph
        assert back.cost("a") == 1.0 / 3.0
        assert back.cost("b") == math.pi
        assert back.comm_cost("a", "b") == 2.0 / 7.0

    @pytest.mark.parametrize("fmt", format_names())
    def test_id_types_survive(self, fmt):
        g = TaskGraph(name="ids")
        g.add_task(0, 1.0)
        g.add_task("0", 2.0)          # str id that looks like the int id
        g.add_task("x y", 3.0)        # id with whitespace
        g.add_edge(0, "0", 1.0)
        g.add_edge("0", "x y", 2.0)
        back = loads_workload(dumps_workload(g, fmt), fmt).graph
        assert back.tasks() == [0, "0", "x y"]
        assert back.cost(0) == 1.0 and back.cost("0") == 2.0

    @pytest.mark.parametrize("fmt", format_names())
    def test_hostile_string_ids_survive(self, fmt):
        # backslashes, mixed quotes, arrows and newlines: every one of
        # these corrupted or crashed an earlier revision of some reader
        ids = ["back\\slash", 'say "hi"', "it's", "a->b", "two\nlines",
               "idx[0]", "open[bracket"]
        g = TaskGraph(name="hostile")
        prev = None
        for i, tid in enumerate(ids):
            g.add_task(tid, float(i + 1))
            if prev is not None:
                g.add_edge(prev, tid, 0.5 * i)
            prev = tid
        back = loads_workload(dumps_workload(g, fmt), fmt).graph
        assert graphs_equal(g, back, check_name=True), fmt

    @pytest.mark.parametrize("fmt", format_names())
    def test_empty_graph_name_survives(self, fmt):
        g = TaskGraph(name="")
        g.add_task(0, 1.0)
        back = loads_workload(dumps_workload(g, fmt), fmt).graph
        assert back.name == ""

    def test_trace_round_trips_exec_tables(self):
        g = relabel_tasks(regular_graph("gauss", 30, 1.0, seed=2))
        system = HeterogeneousSystem.sample(g, hypercube(8), seed=2)
        wl = read_trace(write_trace(system))
        assert wl.n_procs == 8
        for t in g.tasks():
            assert wl.exec_costs[t] == system.exec_cost_row(t)
            assert wl.graph.cost(t) == min(system.exec_cost_row(t))
        # second generation: workload -> trace -> workload is stable
        again = read_trace(write_trace(wl))
        assert again.exec_costs == wl.exec_costs
        assert graphs_equal(wl.graph, again.graph, check_name=True)

    def test_tuple_ids_rejected_with_hint(self):
        g = fork_join(1, 2)  # tuple ids
        for fmt in ("stg", "dot", "trace"):
            with pytest.raises(GraphError, match="relabel"):
                dumps_workload(g, fmt)


class TestStg:
    def test_reads_kasahara_dummy_convention(self):
        # declared count excludes the zero-cost entry/exit dummies
        text = (
            "2\n"
            "0 0 0\n"
            "1 7 1 0\n"
            "2 9 1 1\n"
            "3 0 1 2\n"
        )
        wl = read_stg(text, default_comm=2.5)
        assert wl.graph.tasks() == [1, 2]
        assert wl.graph.cost(1) == 7.0
        assert wl.graph.comm_cost(1, 2) == 2.5

    def test_keep_dummies_is_an_error_for_zero_cost(self):
        text = "1\n0 0 0\n"
        with pytest.raises(GraphError, match="non-positive"):
            read_stg(text, strip_dummies=False)

    def test_zero_cost_interior_task_rejected(self):
        text = "3\n0 5 0\n1 0 1 0\n2 5 1 1\n"
        with pytest.raises(GraphError, match="non-positive"):
            read_stg(text)

    def test_count_mismatch_rejected(self):
        with pytest.raises(GraphError, match="task lines"):
            read_stg("3\n0 1 0\n1 1 1 0\n")

    def test_pred_count_mismatch_rejected(self):
        with pytest.raises(GraphError, match="predecessors"):
            read_stg("2\n0 1 0\n1 1 2 0\n")

    def test_unknown_pred_rejected(self):
        with pytest.raises(GraphError, match="unknown task"):
            read_stg("2\n0 1 0\n1 1 1 5\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(GraphError, match="unknown STG directive"):
            read_stg("1\n0 1 0\n#@ wat 1\n")

    def test_plain_comments_ignored(self):
        wl = read_stg("# a comment\n1\n# another\n0 4 0\n")
        assert wl.graph.cost(0) == 4.0

    def test_connected_dummies_stripped_together(self):
        # entry dummy feeding the exit dummy directly: both die in the
        # same stripping round (regression: raw KeyError)
        wl = read_stg("1\n0 0 0\n1 5.0 1 0\n2 0 2 0 1\n")
        assert wl.graph.tasks() == [1]
        assert wl.graph.cost(1) == 5.0

    def test_malformed_directive_numbers_raise_grapherror(self):
        with pytest.raises(GraphError, match="#@ comm"):
            read_stg("1\n0 1.0 0\n#@ comm a b 1.0\n")
        with pytest.raises(GraphError, match="#@ task"):
            read_stg("1\n0 1.0 0\n#@ task x 'y'\n")


class TestDot:
    def test_reads_legacy_to_dot_output(self):
        g = TaskGraph(name="legacy")
        g.add_task("a", 12.0)
        g.add_task("b", 8.0)
        g.add_edge("a", "b", 3.0)
        wl = read_dot(to_dot(g))
        # label-based costs are %g-lossy in general but exact for these
        assert graphs_equal(g, wl.graph, check_name=True)

    def test_edge_chains_and_defaults(self):
        wl = read_dot(
            "digraph { rankdir=LR; 0 [cost=1.0]; 1 [cost=2.0]; "
            "2 [cost=3.0]; 0 -> 1 -> 2 [comm=5.0]; }"
        )
        assert wl.graph.comm_cost(0, 1) == 5.0
        assert wl.graph.comm_cost(1, 2) == 5.0

    def test_node_without_cost_needs_default(self):
        text = "digraph { a -> b; a [cost=1.0]; }"
        with pytest.raises(GraphError, match="default_cost"):
            read_dot(text)
        wl = read_dot(text, default_cost=9.0)
        assert wl.graph.cost("b") == 9.0
        assert wl.graph.cost("a") == 1.0

    def test_quoted_ids_with_escapes(self):
        g = TaskGraph(name='quo"ted')
        g.add_task('say "hi"', 1.0)
        g.add_task("back\\slash", 2.0)
        g.add_edge('say "hi"', "back\\slash", 0.5)
        back = read_dot(write_dot(g))
        assert graphs_equal(g, back.graph, check_name=True)

    def test_comments_stripped(self):
        wl = read_dot(
            "// line comment\ndigraph d { /* block\ncomment */ 0 [cost=2.0]; }"
        )
        assert wl.graph.tasks() == [0]

    def test_non_digraph_rejected(self):
        with pytest.raises(GraphError, match="digraph"):
            read_dot("graph g { a -- b; }")

    def test_separators_inside_quoted_labels(self):
        # ';' and literal newlines inside a label must not split the
        # statement (regression: cost= attr lost to a discarded fragment)
        wl = read_dot(
            'digraph g { a [label="x;y", cost=2.0]; '
            'b [label="two\nlines" cost=3.0]; a -> b [comm=1.0]; }'
        )
        assert wl.graph.cost("a") == 2.0
        assert wl.graph.cost("b") == 3.0

    def test_multiline_attr_block(self):
        wl = read_dot("digraph g { a [cost=4.0,\n  label=\"a\"]; }")
        assert wl.graph.cost("a") == 4.0

    def test_non_numeric_cost_attr_raises_grapherror(self):
        with pytest.raises(GraphError, match="not a number"):
            read_dot("digraph g { a [cost=abc]; }")


class TestTrace:
    def base_doc(self):
        return {
            "format": "repro-trace",
            "version": 1,
            "name": "t",
            "tasks": [{"id": 0, "cost": 5.0}, {"id": 1, "cost": 4.0}],
            "edges": [{"src": 0, "dst": 1, "comm": 2.0}],
        }

    def test_wrong_format_and_version_rejected(self):
        doc = self.base_doc()
        doc["format"] = "other"
        with pytest.raises(GraphError, match="repro-trace"):
            read_trace(json.dumps(doc))
        doc = self.base_doc()
        doc["version"] = 99
        with pytest.raises(GraphError, match="version"):
            read_trace(json.dumps(doc))
        with pytest.raises(GraphError, match="JSON"):
            read_trace("not json")

    def test_mixed_cost_kinds_rejected(self):
        doc = self.base_doc()
        doc["n_procs"] = 2
        doc["tasks"][1] = {"id": 1, "costs": [1.0, 2.0]}
        with pytest.raises(GraphError, match="mixes"):
            read_trace(json.dumps(doc))

    def test_vectors_require_n_procs_and_uniform_length(self):
        doc = self.base_doc()
        doc["tasks"] = [{"id": 0, "costs": [1.0, 2.0]}]
        doc["edges"] = []
        with pytest.raises(GraphError, match="n_procs"):
            read_trace(json.dumps(doc))
        doc["n_procs"] = 3
        with pytest.raises(GraphError, match="list of 3"):
            read_trace(json.dumps(doc))

    def test_nonpositive_vector_cost_rejected(self):
        doc = self.base_doc()
        doc["n_procs"] = 2
        doc["tasks"] = [{"id": 0, "costs": [1.0, 0.0]}]
        doc["edges"] = []
        with pytest.raises(GraphError, match="positive"):
            read_trace(json.dumps(doc))

    def test_non_numeric_costs_raise_grapherror(self):
        doc = self.base_doc()
        doc["tasks"][0]["cost"] = "abc"
        with pytest.raises(GraphError, match="must be a number"):
            read_trace(json.dumps(doc))
        doc = self.base_doc()
        doc["edges"][0]["comm"] = None
        with pytest.raises(GraphError, match="must be a number"):
            read_trace(json.dumps(doc))
        doc = self.base_doc()
        doc["n_procs"] = 2
        for t in doc["tasks"]:
            del t["cost"]
        doc["tasks"][0]["costs"] = [1.0, None]
        doc["tasks"][1]["costs"] = [1.0, 1.0]
        with pytest.raises(GraphError, match="numbers"):
            read_trace(json.dumps(doc))

    def test_bool_and_null_ids_rejected(self):
        doc = self.base_doc()
        doc["tasks"][0]["id"] = True
        with pytest.raises(GraphError, match="int or str"):
            read_trace(json.dumps(doc))
        doc["tasks"][0]["id"] = None
        with pytest.raises(GraphError, match="int or str"):
            read_trace(json.dumps(doc))


class TestSniffing:
    def test_sniffs_all_writer_outputs(self):
        g = random_graph(20, 1.0, seed=0)
        for fmt in format_names():
            assert sniff_format(dumps_workload(g, fmt)) == fmt

    def test_trace_and_json_disambiguated_by_content(self):
        g = random_graph(20, 1.0, seed=0)
        assert sniff_format(dumps_workload(g, "json"), "x.json") == "json"
        assert sniff_format(dumps_workload(g, "trace"), "x.json") == "trace"

    def test_extension_breaks_content_tie(self):
        # an empty-ish JSON dict matches no content sniffer; extension
        # is the only evidence
        with pytest.raises(GraphError, match="cannot determine"):
            sniff_format("{}")

    def test_unknown_content_rejected(self):
        with pytest.raises(GraphError, match="cannot determine"):
            sniff_format("what is this\n")


class TestValidation:
    def test_cycle_rejected(self):
        text = (
            "digraph c { 0 [cost=1.0]; 1 [cost=1.0]; "
            "0 -> 1 [comm=1.0]; 1 -> 0 [comm=1.0]; }"
        )
        with pytest.raises(CycleError):
            loads_workload(text, "dot")

    def test_disconnected_rejected_unless_allowed(self):
        text = (
            "digraph d { 0 [cost=1.0]; 1 [cost=1.0]; 2 [cost=1.0]; "
            "3 [cost=1.0]; 0 -> 1 [comm=1.0]; 2 -> 3 [comm=1.0]; }"
        )
        with pytest.raises(DisconnectedGraphError):
            loads_workload(text, "dot")
        wl = loads_workload(text, "dot", require_connected=False)
        assert wl.graph.n_tasks == 4

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            loads_workload("0\n", "stg")

    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError, match="unknown graph format"):
            loads_workload("x", "xml")
        with pytest.raises(GraphError, match="unknown graph format"):
            dumps_workload(TaskGraph(), "xml")


class TestFilesAndConvert:
    def test_load_save_convert(self, tmp_path):
        g = random_graph(25, 1.0, seed=3)
        src = tmp_path / "g.stg"
        fmt = save_workload(g, str(src))
        assert fmt == "stg"
        wl = load_workload(str(src))
        assert wl.source == str(src)
        assert wl.content_hash == content_hash(src.read_text())
        assert graphs_equal(g, wl.graph, check_name=True)

        # chain through every format and come back
        prev = str(src)
        for i, fmt in enumerate(("trace", "json", "dot", "stg")):
            nxt = str(tmp_path / f"g{i}.{fmt if fmt != 'trace' else 'trace.json'}")
            in_fmt, out_fmt, _ = convert_file(prev, nxt)
            assert out_fmt == fmt
            prev = nxt
        assert graphs_equal(g, load_workload(prev).graph, check_name=True)

    def test_save_infers_trace_over_json_for_trace_suffix(self, tmp_path):
        g = random_graph(10, 1.0, seed=0)
        path = tmp_path / "g.trace.json"
        assert save_workload(g, str(path)) == "trace"
        assert sniff_format(path.read_text()) == "trace"

    def test_save_and_sniff_share_the_extension_tie_break(self):
        # '.trace.json' must resolve to trace in *both* directions, even
        # when the content alone is inconclusive
        assert sniff_format("{}", filename="x.trace.json") == "trace"
        assert sniff_format("{}", filename="x.stg") == "stg"

    def test_save_unknown_extension_needs_fmt(self, tmp_path):
        with pytest.raises(GraphError, match="cannot infer"):
            save_workload(random_graph(10, 1.0, seed=0), str(tmp_path / "g.xml"))

    def test_reader_kwargs_filtered_per_format(self, tmp_path):
        # default_comm means nothing to a trace: it must be ignored, not
        # explode, so CLI flags can apply "wherever relevant"
        g = random_graph(10, 1.0, seed=0)
        path = tmp_path / "g.trace.json"
        save_workload(g, str(path))
        wl = load_workload(str(path), default_comm=123.0)
        assert graphs_equal(g, wl.graph)

    def test_reader_kwarg_typos_rejected(self, tmp_path):
        # an option no registered reader accepts is a typo, not an
        # inapplicable format option
        g = random_graph(10, 1.0, seed=0)
        path = tmp_path / "g.stg"
        save_workload(g, str(path))
        with pytest.raises(GraphError, match="default_cots"):
            load_workload(str(path), default_cots=5.0)


class TestRelabel:
    def test_default_relabel_tuples(self):
        g = fork_join(1, 2)
        out = relabel_tasks(g)
        assert out.tasks() == ["J_0", "F_1", "W_1_0", "W_1_1", "J_1"]
        assert out.n_edges == g.n_edges
        assert out.total_exec_cost() == g.total_exec_cost()

    def test_collision_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        with pytest.raises(GraphError, match="collapsed"):
            relabel_tasks(g, rename=lambda t: "same")


class TestGraphsEqual:
    def test_detects_each_difference(self):
        base = TaskGraph(name="x")
        base.add_task("a", 1.0)
        base.add_task("b", 2.0)
        base.add_edge("a", "b", 3.0)
        assert graphs_equal(base, base.copy(), check_name=True)

        other = base.copy()
        other.set_task_cost("a", 1.5)
        assert not graphs_equal(base, other)

        other = base.copy()
        other.set_edge_cost("a", "b", 3.5)
        assert not graphs_equal(base, other)

        other = TaskGraph(name="x")  # different insertion order
        other.add_task("b", 2.0)
        other.add_task("a", 1.0)
        other.add_edge("a", "b", 3.0)
        assert not graphs_equal(base, other)

        assert not graphs_equal(base, base.copy(name="y"), check_name=True)
        assert graphs_equal(base, base.copy(name="y"), check_name=False)


# A published-style Kasahara STG whose zero-cost dummies are the only
# connectors between two otherwise-independent chains: stripping them
# (required) leaves a disconnected graph.
DUMMY_BRIDGED_STG = """\
6
0 0 0
1 10 1 0
2 20 1 1
3 30 1 0
4 40 1 3
5 0 2 2 4
"""


class TestBridgePolicy:
    def test_dummy_bridged_stg_fails_strict_import(self):
        with pytest.raises(DisconnectedGraphError):
            loads_workload(DUMMY_BRIDGED_STG, "stg")

    def test_epsilon_bridge_repairs_the_import(self):
        wl = loads_workload(DUMMY_BRIDGED_STG, "stg", bridge="epsilon")
        g = wl.graph
        assert g.tasks() == [1, 2, 3, 4]  # dummies stripped
        # one connector edge from the hub (first source, task 1) to the
        # first source of the second component (task 3), at zero cost
        assert g.has_edge(1, 3)
        assert g.comm_cost(1, 3) == 0.0
        assert g.n_edges == 3
        from repro.graph.validation import check_connected

        check_connected(g)  # must not raise

    def test_bridge_is_noop_on_connected_graphs(self):
        from repro.graph.interchange import bridge_components

        wl = loads_workload("2\n0 10 0\n1 20 1 0\n", "stg")
        assert bridge_components(wl.graph) is wl.graph
        # and the load path keeps the very same workload object
        assert loads_workload(
            "2\n0 10 0\n1 20 1 0\n", "stg", bridge="epsilon"
        ).graph.n_edges == 1

    def test_bridge_many_components(self):
        from repro.graph.interchange import bridge_components
        from repro.graph.validation import weak_components

        g = TaskGraph("five")
        for i in range(5):
            g.add_task(i, float(i + 1))
        bridged = bridge_components(g)
        assert len(weak_components(bridged)) == 1
        assert bridged.n_edges == 4
        assert all(u == 0 for u, _ in bridged.edges())  # hub is task 0
        bridged.topological_order()  # still a DAG

    def test_bridging_a_cyclic_component_fails_cleanly(self):
        # bridging runs before the DAG check; a cyclic component has no
        # source, which must surface as GraphError, not StopIteration
        text = ('digraph g { a [cost=1]; b [cost=1]; c [cost=1]; '
                'a -> b [comm=1]; b -> a [comm=1]; }')
        with pytest.raises(GraphError, match="cycle"):
            loads_workload(text, "dot", bridge="epsilon")

    def test_unknown_bridge_policy_rejected(self):
        with pytest.raises(GraphError, match="bridge policy"):
            loads_workload(DUMMY_BRIDGED_STG, "stg", bridge="glue")

    def test_negative_bridge_comm_rejected(self):
        from repro.graph.interchange import bridge_components

        g = TaskGraph()
        g.add_task(0, 1.0)
        g.add_task(1, 1.0)
        with pytest.raises(GraphError, match=">= 0"):
            bridge_components(g, comm=-1.0)

    def test_bundled_fixture_schedules_under_all_modes(self):
        """The examples/corpus fixture: bridged import schedules
        validator-clean (zero-cost bridge edges exercise the engines'
        zero-cost-edge guards in every mode)."""
        from repro.experiments.runner import _SCHEDULERS, build_cell_system
        from repro.schedule.io import schedule_to_json
        from repro.schedule.validator import validate_schedule
        from repro.util.intervals import hotpath_mode, set_hotpath_mode
        from repro.workloads.external import external_cell
        from repro.corpus.overlays import Overlay

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples", "corpus", "bridged_chains.stg",
        )
        initial = hotpath_mode()
        try:
            blobs = {}
            for mode in ("legacy", "fast", "incremental", "array"):
                set_hotpath_mode(mode)
                cell = external_cell(
                    path, algorithm="bsa", topology="ring", n_procs=4,
                    overlay=Overlay(bridge="epsilon"),
                )
                schedule = _SCHEDULERS["bsa"](build_cell_system(cell))
                validate_schedule(schedule)
                blobs[mode] = schedule_to_json(schedule)
        finally:
            set_hotpath_mode(initial)
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])

    def test_convert_cli_bridge(self, tmp_path, capsys):
        from repro.cli import main

        src = str(tmp_path / "dummy.stg")
        with open(src, "w") as fh:
            fh.write(DUMMY_BRIDGED_STG)
        dst = str(tmp_path / "out.trace.json")
        assert main(["convert", src, dst]) == 6
        assert "not weakly connected" in capsys.readouterr().err
        assert main(["convert", src, dst, "--bridge", "epsilon"]) == 0
        wl = load_workload(dst)
        assert wl.graph.has_edge(1, 3)


class TestComponentsBridge:
    """The ``components`` bridge policy: co-schedule weak components as
    independent programs instead of serializing them behind hub edges."""

    @property
    def path(self):
        return os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples", "corpus", "bridged_chains.stg",
        )

    def _schedule(self, workload):
        from repro import hypercube, schedule_bsa
        from repro.network.system import HeterogeneousSystem
        from repro.schedule.validator import validate_schedule

        system = HeterogeneousSystem.sample(
            workload.graph, hypercube(4), het_range=(1, 2), seed=0
        )
        sched = schedule_bsa(system)
        validate_schedule(sched)
        return sched

    def test_three_way_equivalence(self):
        """components == raw graph (no added edges) + the independence
        mark; epsilon == the same tasks behind extra hub edges; both
        repairs schedule every task validly."""
        raw = load_workload(
            self.path, bridge="none", require_connected=False
        ).graph
        comp = load_workload(self.path, bridge="components").graph
        eps = load_workload(self.path, bridge="epsilon").graph

        # components adds nothing: identical task set, costs, and edges
        assert comp.tasks() == raw.tasks()
        assert comp.edges() == raw.edges()
        assert all(comp.cost(t) == raw.cost(t) for t in raw.tasks())
        assert all(
            comp.comm_cost(u, v) == raw.comm_cost(u, v)
            for u, v in raw.edges()
        )
        assert comp.components_independent and not raw.components_independent

        # epsilon is the same program set plus connector (hub) edges
        assert eps.tasks() == raw.tasks()
        assert not eps.components_independent
        extra = set(eps.edges()) - set(raw.edges())
        assert extra and set(raw.edges()) <= set(eps.edges())
        from repro.graph.validation import weak_components

        assert len(weak_components(comp)) == 3
        assert len(weak_components(eps)) == 1

    def test_both_repairs_schedule_all_tasks(self):
        comp_wl = load_workload(self.path, bridge="components")
        eps_wl = load_workload(self.path, bridge="epsilon")
        comp_sched = self._schedule(comp_wl)
        eps_sched = self._schedule(eps_wl)
        assert len(comp_sched.slots) == comp_wl.graph.n_tasks == 8
        assert len(eps_sched.slots) == 8
        # no hub serialization: independent components never wait on a
        # zero-cost connector, so this fixture schedules strictly better
        assert (comp_sched.schedule_length()
                <= eps_sched.schedule_length() + 1e-9)

    def test_flag_survives_copy(self):
        comp = load_workload(self.path, bridge="components").graph
        assert comp.copy().components_independent

    def test_connected_graph_unchanged(self):
        # a connected import is returned as-is (no mark, no copy)
        wl = loads_workload(
            "digraph g { a [cost=1]; b [cost=1]; a -> b [comm=1]; }",
            "dot", bridge="components",
        )
        assert not wl.graph.components_independent

    def test_schedule_cli_components(self, tmp_path, capsys):
        from repro.cli import main

        src = str(tmp_path / "dummy.stg")
        with open(src, "w") as fh:
            fh.write(DUMMY_BRIDGED_STG)
        assert main(["schedule", "--graph", src,
                     "--bridge", "components"]) == 0
        out = capsys.readouterr().out
        assert "SL" in out and "4 tasks" in out

    def test_overlay_token_round_trip(self):
        from repro.corpus.overlays import Overlay, parse_overlay

        ov = Overlay(bridge="components")
        assert ov.token() == "bridgecomp"
        assert parse_overlay("bridgecomp") == ov
        assert not ov.is_identity
        # distinct from the epsilon token (distinct cache keys)
        assert parse_overlay("bridge") == Overlay(bridge="epsilon")
