"""Error-hierarchy contracts and miscellaneous edge cases."""

import pytest

from repro import (
    HeterogeneousSystem,
    Schedule,
    TaskGraph,
    clique,
    schedule_bsa,
    schedule_round_robin,
    schedule_serial,
    settle,
    star,
    validate_schedule,
)
from repro.errors import (
    ConfigurationError,
    CycleError,
    DisconnectedGraphError,
    GraphError,
    InvalidScheduleError,
    ReproError,
    RoutingError,
    SchedulingError,
    TopologyError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, CycleError, DisconnectedGraphError, TopologyError,
        RoutingError, SchedulingError, InvalidScheduleError,
        ConfigurationError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        if exc is InvalidScheduleError:
            instance = exc(["violation"])
        elif exc is CycleError:
            instance = exc("cycle", nodes=[1, 2])
        else:
            instance = exc("boom")
        assert isinstance(instance, ReproError)

    def test_cycle_error_carries_nodes(self):
        err = CycleError("stuck", nodes=["a", "b"])
        assert err.nodes == ["a", "b"]

    def test_invalid_schedule_error_lists_violations(self):
        err = InvalidScheduleError([f"v{i}" for i in range(30)])
        assert len(err.violations) == 30
        assert "+5 more" in str(err)

    def test_subgraph_errors_catchable_as_graph_error(self):
        assert issubclass(CycleError, GraphError)
        assert issubclass(DisconnectedGraphError, GraphError)


class TestEdgeCases:
    def test_more_processors_than_tasks(self):
        g = TaskGraph(name="tiny")
        g.add_task("a", 5.0)
        g.add_task("b", 5.0)
        g.add_edge("a", "b", 1.0)
        system = HeterogeneousSystem.sample(g, clique(8), het_range=(1, 3), seed=0)
        for scheduler in (schedule_bsa, schedule_serial, schedule_round_robin):
            validate_schedule(scheduler(system))

    def test_single_task_program(self):
        g = TaskGraph(name="one")
        g.add_task("only", 42.0)
        system = HeterogeneousSystem.sample(g, star(4), het_range=(1, 9), seed=1)
        sched = schedule_bsa(system)
        validate_schedule(sched)
        # the single task lands on its fastest processor
        best = min(range(4), key=lambda p: system.exec_cost("only", p))
        assert sched.proc_of("only") == best
        assert sched.schedule_length() == pytest.approx(
            system.exec_cost("only", best)
        )

    def test_zero_cost_messages_everywhere(self):
        """A graph whose messages are all free still schedules validly."""
        g = TaskGraph(name="freecomm")
        g.add_task("a", 10.0)
        g.add_task("b", 10.0)
        g.add_task("c", 10.0)
        g.add_edge("a", "b", 0.0)
        g.add_edge("a", "c", 0.0)
        system = HeterogeneousSystem.sample(g, clique(3), het_range=(1, 2), seed=2)
        sched = schedule_bsa(system)
        validate_schedule(sched)

    def test_stats_summary_strings(self, small_random_system):
        sched = schedule_bsa(small_random_system)
        text = sched.stats_summary()
        assert "SL=" in text and "tasks=" in text
        assert repr(sched).startswith("Schedule(")

    def test_settle_empty_schedule(self, paper_system):
        s = Schedule(paper_system)
        settle(s)  # no tasks: trivially fine
        assert s.schedule_length() == 0.0

    def test_restore_from_wrong_system_rejected(self, paper_system, small_random_system):
        a = Schedule(paper_system)
        b = Schedule(small_random_system)
        with pytest.raises(SchedulingError):
            a.restore_from(b.copy())

    def test_route_arrival_empty(self):
        from repro.schedule.events import Route

        assert Route(("a", "b"), []).arrival == 0.0

    def test_long_chain_deep_recursion_safe(self):
        """500-task chain: serialization and settle must not recurse out."""
        g = TaskGraph(name="deepchain")
        prev = None
        for i in range(500):
            g.add_task(i, 1.0)
            if prev is not None:
                g.add_edge(prev, i, 1.0)
            prev = i
        from repro import serialize

        order = serialize(g)
        assert order == list(range(500))
