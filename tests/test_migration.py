"""Tests for migration evaluation and commitment."""

import pytest

from repro import Schedule, settle, validate_schedule
from repro.core.migration import (
    commit_migration,
    current_drt_vip,
    evaluate_migration,
)
from repro.core.serialization import serial_injection
from repro.errors import SchedulingError


def _diamond_system(edge_order):
    """Diamond a->b, a->c, b->d, c->d with the incoming edges of ``d``
    added in the given order — so ``predecessors(d)`` iterates in edge
    insertion order, which need not match graph (task) order."""
    from repro.graph.model import TaskGraph
    from repro.network.system import HeterogeneousSystem
    from repro.network.topology import ring

    g = TaskGraph(name="diamond-ties")
    for t in "abcd":
        g.add_task(t, 10.0)
    g.add_edge("a", "b", 1.0)
    g.add_edge("a", "c", 1.0)
    for u in edge_order:
        g.add_edge(u, "d", 1.0)
    table = {t: [g.cost(t)] * 3 for t in g.tasks()}
    return HeterogeneousSystem.from_exec_table(g, ring(3), table)


def _equal_arrival_schedule(system, c_finish=None):
    """b and c finish simultaneously (or c at exactly ``c_finish``);
    d's two message arrivals are the producer finishes."""
    s = Schedule(system)
    s.place_task("a", 0, start=0.0)
    s.place_task("b", 0, start=10.0)
    s.place_task("c", 1, start=10.0)
    s.place_task("d", 2, start=40.0)
    for e in system.graph.edges():
        s.mark_local(e)  # arrivals collapse to producer finishes
    if c_finish is not None:
        # pin the arrival to the exact float boundary under test —
        # deriving it through start+duration would re-round the sum
        s.slots["c"].finish = c_finish
    return s


class TestCurrentDrtVip:
    def test_entry_task(self, paper_system):
        _, sched = serial_injection(paper_system)
        drt, vip = current_drt_vip(sched, "T1")
        assert drt == 0.0 and vip is None

    @pytest.mark.parametrize("edge_order", ["bc", "cb"])
    def test_tie_resolves_to_earliest_in_graph_order(self, edge_order):
        """Equal arrivals: the VIP is the earliest predecessor in *graph*
        order regardless of edge insertion (= predecessors()) order.
        The ``cb`` case is the documented-vs-implemented mismatch: the
        old first-seen scan returned ``c`` there."""
        system = _diamond_system(edge_order)
        sched = _equal_arrival_schedule(system)
        drt, vip = current_drt_vip(sched, "d")
        assert drt == sched.slots["b"].finish
        assert vip == "b"

    def test_drt_eps_boundary(self):
        """An arrival must beat the running max by *more than* DRT_EPS to
        displace the VIP: exactly DRT_EPS later keeps the earlier task,
        clearly later (1e-9) wins."""
        from repro.util.tolerance import DRT_EPS, EPS

        assert DRT_EPS < EPS  # BSA's pruning margin must absorb it

        system = _diamond_system("bc")
        at_eps = _equal_arrival_schedule(system, c_finish=20.0 + DRT_EPS)
        drt, vip = current_drt_vip(at_eps, "d")
        assert vip == "b"  # c's arrival is only DRT_EPS later: a tie
        assert drt == at_eps.slots["b"].finish

        beyond = _equal_arrival_schedule(system, c_finish=20.0 + 1e-9)
        drt, vip = current_drt_vip(beyond, "d")
        assert vip == "c"  # now a real displacement
        assert drt == beyond.slots["c"].finish

    def test_evaluate_migration_vip_uses_same_tie_break(self):
        """MigrationPlan.vip resolves epsilon-ties to the earliest
        predecessor in graph order, like current_drt_vip."""
        system = _diamond_system("cb")
        s = Schedule(system)
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 2, start=10.0)
        s.place_task("c", 2, start=10.0)  # equal finish with b
        s.place_task("d", 0, start=40.0)
        for e in system.graph.edges():
            s.mark_local(e)
        # moving d onto the producers' processor makes both incoming
        # messages local: planned arrivals tie at the shared finish
        plan = evaluate_migration(s, "d", 2)
        assert plan.vip == "b"
        assert plan.drt == s.slots["b"].finish

    def test_serialized_drt_is_producer_finish(self, paper_system):
        _, sched = serial_injection(paper_system)
        drt, vip = current_drt_vip(sched, "T9")
        # all preds local on the pivot: DRT = max predecessor finish
        finishes = {
            k: sched.slots[k].finish
            for k in paper_system.graph.predecessors("T9")
        }
        assert drt == pytest.approx(max(finishes.values()))
        assert vip == max(finishes, key=finishes.get)


class TestEvaluate:
    def test_same_proc_rejected(self, paper_system):
        sel, sched = serial_injection(paper_system)
        with pytest.raises(SchedulingError):
            evaluate_migration(sched, "T1", sel.pivot)

    def test_entry_task_eval(self, paper_system):
        sel, sched = serial_injection(paper_system)  # pivot P2 (index 1)
        plan = evaluate_migration(sched, "T1", 0)
        assert plan.drt == 0.0
        assert plan.st == 0.0
        assert plan.ft == pytest.approx(paper_system.exec_cost("T1", 0))
        assert plan.vip is None

    def test_eval_does_not_mutate(self, paper_system):
        sel, sched = serial_injection(paper_system)
        before_sl = sched.schedule_length()
        before_hops = sum(len(h) for h in sched.link_order.values())
        evaluate_migration(sched, "T9", 0)
        assert sched.schedule_length() == before_sl
        assert sum(len(h) for h in sched.link_order.values()) == before_hops

    def test_downstream_task_includes_message_cost(self, paper_system):
        sel, sched = serial_injection(paper_system)
        plan = evaluate_migration(sched, "T9", 2, route_mode="shortest")
        # T9's messages must cross at least one link: DRT > 0
        assert plan.drt > 0
        assert plan.ft == plan.st + paper_system.exec_cost("T9", 2)
        kinds = {p.kind for p in plan.in_plans.values()}
        assert "rebuild" in kinds

    def test_incremental_extend_kind(self, paper_system):
        sel, sched = serial_injection(paper_system)
        plan = evaluate_migration(sched, "T9", 2, route_mode="incremental")
        assert all(p.kind == "extend" for p in plan.in_plans.values())
        # every in-path is pivot -> neighbor
        for p in plan.in_plans.values():
            assert p.path == [sel.pivot, 2]


class TestCommit:
    def test_commit_moves_task_and_stays_valid(self, paper_system):
        sel, sched = serial_injection(paper_system)
        plan = evaluate_migration(sched, "T5", 3)
        commit_migration(sched, plan)
        assert sched.proc_of("T5") == 3
        validate_schedule(sched)

    def test_commit_improves_or_matches_plan(self, paper_system):
        sel, sched = serial_injection(paper_system)
        plan = evaluate_migration(sched, "T1", 2)
        commit_migration(sched, plan)
        # settle may bubble things up but never past the planned finish
        assert sched.slots["T1"].finish <= plan.ft + 1e-9

    def test_stale_plan_rejected(self, paper_system):
        sel, sched = serial_injection(paper_system)
        plan_a = evaluate_migration(sched, "T5", 3)
        plan_b = evaluate_migration(sched, "T5", 0)
        commit_migration(sched, plan_a)
        with pytest.raises(SchedulingError):
            commit_migration(sched, plan_b)

    def test_roundtrip_migration_restores_locality(self, paper_system):
        sel, sched = serial_injection(paper_system)
        edge_count = lambda: sum(
            1 for r in sched.routes.values() if not r.is_local
        )
        assert edge_count() == 0
        plan = evaluate_migration(sched, "T5", 3)
        commit_migration(sched, plan)
        assert edge_count() == 1  # T1 -> T5 crosses processors
        back = evaluate_migration(sched, "T5", sel.pivot)
        commit_migration(sched, back)
        assert edge_count() == 0  # local again
        validate_schedule(sched)

    def test_bubble_up_after_migration(self, homogeneous_system):
        """Removing a slot lets later tasks on the same processor bubble up."""
        s = Schedule(homogeneous_system)
        # P0 runs a, c, b back-to-back (b only needs a, but queues behind c)
        for t in ["a", "c", "b", "d"]:
            s.place_task(t, 0, start=0.0, position=len(s.proc_order[0]))
        for e in homogeneous_system.graph.edges():
            s.mark_local(e)
        settle(s)
        assert s.slots["b"].start == pytest.approx(40.0)  # a(10) + c(30)
        plan = evaluate_migration(s, "c", 1)
        commit_migration(s, plan)
        # with c gone, b starts right after its producer a
        assert s.slots["b"].start == pytest.approx(10.0)
        validate_schedule(s)
