"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines where the ``wheel``
package (needed for PEP 660 editable builds) is unavailable — pip then
falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
