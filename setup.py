"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines where the ``wheel``
package (needed for PEP 660 editable builds) is unavailable — pip then
falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup(
    extras_require={
        # the REPRO_HOTPATH=array engine is the only consumer of numpy;
        # every other mode must install and run dependency-free, so the
        # dependency is an extra, never a hard requirement. Requesting
        # array mode without numpy raises a clean ConfigurationError
        # (repro.util.intervals._require_numpy).
        "array": ["numpy>=1.22"],
    },
)
