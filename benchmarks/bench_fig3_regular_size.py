"""Figure 3: average SL vs graph size — regular graphs, four topologies.

Regenerates the four panels (ring / hypercube / clique / random, BSA vs
DLS averaged over applications and granularities) and benchmarks one
representative cell.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.figures import figure3
from repro.experiments.reporting import render_improvement_summary, render_panels
from repro.experiments.runner import build_cell_system, run_cell
from repro.core.bsa import BSAOptions, schedule_bsa

from _bench_util import publish


@pytest.fixture(scope="module")
def fig3_panels(scale):
    return figure3(scale=scale)


def test_fig3_regular_graphs_vs_size(benchmark, fig3_panels, scale):
    publish(
        "fig3_regular_size",
        render_panels(fig3_panels) + "\n\n" + render_improvement_summary(fig3_panels),
    )
    # paper shape: BSA outperforms DLS on average over the size sweep
    for topo, fig in fig3_panels.items():
        ratios = [b / d for b, d in zip(fig.series["bsa"], fig.series["dls"])]
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio < 1.15, f"{topo}: BSA/DLS mean ratio {mean_ratio:.3f}"

    cell = Cell("regular", scale.regular_apps[0], scale.sizes[0], 1.0, "ring", "bsa")
    system = build_cell_system(cell)
    benchmark(lambda: schedule_bsa(system, BSAOptions()))
