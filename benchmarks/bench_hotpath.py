"""Hot-path speedup benchmark: legacy vs fast vs incremental vs array.

Runs a Figure-3-style sweep (regular + random graphs x granularities x
the paper's four 16-processor topologies x {BSA, DLS}) four times —
with the original linear-rescan hot path (``legacy``), the
indexed-timeline / memoized / pruned engine (``fast``), the
change-driven settle + undo-log engine (``incremental``), and the
flat-array / vectorized-candidate engine (``array``) — and:

* asserts every schedule is **byte-identical** across all four modes
  (serializer JSON compared cell by cell, which covers every task time
  and every message hop);
* reports the single-process speedups (legacy->fast,
  legacy->incremental and legacy->array);
* runs the **settle/rollback microbench**: end-to-end BSA on n>=100-task
  workloads, fast vs incremental vs array — isolating what the
  change-driven settle engine, the undo-log rollback, and the array
  rewrite buy on the workloads they target (recorded target: >= 2x
  aggregate for incremental over fast);
* records the **scaling curve** (n=100 -> 2000, incremental vs array)
  and enforces the floor that array wins at n >= 1000 — the scale the
  array engine exists for;
* optionally measures parallel-runner scaling (``--jobs N`` wall clock
  vs serial) on the same sweep;
* writes everything to ``BENCH_hotpath.json`` (repo root by default) so
  the speedups are tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full bench
    PYTHONPATH=src python benchmarks/bench_hotpath.py --preset smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines.dls import schedule_dls
from repro.core.bsa import BSAOptions, schedule_bsa
from repro.experiments.config import Cell
from repro.experiments.runner import build_cell_system, run_cells
from repro.schedule.io import schedule_to_json
from repro.schedule.validator import validate_schedule
from repro.util.intervals import set_hotpath_mode

TOPOLOGIES = ("ring", "hypercube", "clique", "random")
ALGORITHMS = ("bsa", "dls")
MODES = ("legacy", "fast", "incremental", "array")

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")

#: settle/rollback microbench: BSA end-to-end on n>=100-task workloads,
#: fast vs incremental (same indexed planning; the delta is exactly the
#: incremental settle engine + undo-log rollback)
MICROBENCH_WORKLOADS = {
    "default": [
        ("regular", "gauss", 250, 1.0),
        ("regular", "laplace", 300, 1.0),
        ("random", "random", 300, 1.0),
        ("regular", "gauss", 400, 1.0),
    ],
    "smoke": [
        ("regular", "gauss", 150, 1.0),
    ],
}


def sweep_cells(preset: str) -> List[Cell]:
    """A Fig.3-style grid, sized by preset."""
    if preset == "smoke":
        apps, sizes, grans = ("gauss",), (30,), (1.0,)
    elif preset == "default":
        apps, sizes, grans = ("gauss", "laplace"), (40, 80), (0.1, 1.0, 10.0)
    else:
        raise ValueError(f"unknown preset {preset!r}")
    cells = [
        Cell("regular", app, size, gran, topology, algorithm)
        for app in apps
        for size in sizes
        for gran in grans
        for topology in TOPOLOGIES
        for algorithm in ALGORITHMS
    ]
    # a slice of the random suite keeps the sweep honest about both
    # graph families without doubling the runtime
    cells += [
        Cell("random", "random", sizes[-1], 1.0, topology, algorithm)
        for topology in TOPOLOGIES
        for algorithm in ALGORITHMS
    ]
    return cells


def _schedule(cell: Cell):
    system = build_cell_system(cell)
    scheduler = (
        (lambda: schedule_bsa(system, BSAOptions()))
        if cell.algorithm == "bsa"
        else (lambda: schedule_dls(system))
    )
    t0 = time.perf_counter()
    sched = scheduler()
    elapsed = time.perf_counter() - t0
    return sched, elapsed


def run_single_process(cells: List[Cell]) -> Dict:
    """Time every cell under all four modes; verify bit-identical
    schedules across the whole mode set."""
    totals = {m: 0.0 for m in MODES}
    per_topology: Dict[str, Dict[str, float]] = {
        t: {m: 0.0 for m in MODES} for t in TOPOLOGIES
    }
    mismatches: List[str] = []
    for i, cell in enumerate(cells):
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            sched, elapsed = _schedule(cell)
            totals[mode] += elapsed
            per_topology[cell.topology][mode] += elapsed
            blobs[mode] = schedule_to_json(sched)
            if mode == "incremental":
                validate_schedule(sched)
        if len(set(blobs.values())) != 1:
            mismatches.append(cell.key())
        sys.stderr.write(
            f"\r[{i + 1}/{len(cells)}] legacy {totals['legacy']:.1f}s "
            f"fast {totals['fast']:.1f}s "
            f"incremental {totals['incremental']:.1f}s "
            f"array {totals['array']:.1f}s"
        )
    sys.stderr.write("\n")
    set_hotpath_mode("incremental")
    return {
        "cells": len(cells),
        "legacy_s": round(totals["legacy"], 3),
        "fast_s": round(totals["fast"], 3),
        "incremental_s": round(totals["incremental"], 3),
        "array_s": round(totals["array"], 3),
        "speedup": round(totals["legacy"] / totals["fast"], 2),
        "speedup_incremental": round(totals["legacy"] / totals["incremental"], 2),
        "speedup_array": round(totals["legacy"] / totals["array"], 2),
        "identical_schedules": not mismatches,
        "mismatched_cells": mismatches,
        "per_topology": {
            t: {
                "legacy_s": round(v["legacy"], 3),
                "fast_s": round(v["fast"], 3),
                "incremental_s": round(v["incremental"], 3),
                "array_s": round(v["array"], 3),
                "speedup": round(v["legacy"] / v["fast"], 2) if v["fast"] else None,
                "speedup_incremental": (
                    round(v["legacy"] / v["incremental"], 2)
                    if v["incremental"] else None
                ),
                "speedup_array": (
                    round(v["legacy"] / v["array"], 2)
                    if v["array"] else None
                ),
            }
            for t, v in per_topology.items()
        },
    }


def run_settle_microbench(preset: str, reps: int = 3) -> Dict:
    """End-to-end BSA, fast vs incremental vs array, n>=100 workloads.

    All three modes share the indexed planning substrate; incremental's
    delta over fast is exactly the change-driven settle engine plus the
    undo-log rollback replacing per-commit snapshots, and array's delta
    over incremental is the flat-array timelines plus the vectorized
    candidate masks. Identity is asserted via the serializer like the
    main sweep. Each workload is timed ``reps`` times per mode
    (interleaved) and the minimum kept — the bench is
    contention-noise-prone on shared CI boxes.
    """
    workloads = MICROBENCH_WORKLOADS[preset]
    best: Dict[tuple, float] = {}
    blobs: Dict[tuple, str] = {}
    for rep in range(reps):
        for suite, app, size, gran in workloads:
            cell = Cell(suite, app, size, gran, "hypercube", "bsa",
                        n_procs=16, graph_seed=1, system_seed=1)
            for mode in ("fast", "incremental", "array"):
                set_hotpath_mode(mode)
                sched, elapsed = _schedule(cell)
                key = (suite, app, size, mode)
                best[key] = min(best.get(key, float("inf")), elapsed)
                if rep == 0:
                    validate_schedule(sched)
                    blobs[key] = schedule_to_json(sched)
    set_hotpath_mode("incremental")
    per_workload = []
    tot = {"fast": 0.0, "incremental": 0.0, "array": 0.0}
    identical = True
    for suite, app, size, gran in workloads:
        f = best[(suite, app, size, "fast")]
        i = best[(suite, app, size, "incremental")]
        a = best[(suite, app, size, "array")]
        tot["fast"] += f
        tot["incremental"] += i
        tot["array"] += a
        same = (blobs[(suite, app, size, "fast")]
                == blobs[(suite, app, size, "incremental")]
                == blobs[(suite, app, size, "array")])
        identical = identical and same
        per_workload.append({
            "workload": f"{app}-n{size}",
            "n_tasks": size,
            "fast_s": round(f, 3),
            "incremental_s": round(i, 3),
            "array_s": round(a, 3),
            "speedup": round(f / i, 2),
            "speedup_array": round(f / a, 2),
            "identical": same,
        })
    return {
        "workloads": per_workload,
        "fast_s": round(tot["fast"], 3),
        "incremental_s": round(tot["incremental"], 3),
        "array_s": round(tot["array"], 3),
        "speedup": round(tot["fast"] / tot["incremental"], 2),
        "speedup_array": round(tot["fast"] / tot["array"], 2),
        "identical_schedules": identical,
    }


#: scaling-curve sizes: the array engine targets n >= 1000; the curve
#: records where the crossover happens, not just the endpoints
SCALING_SIZES = {
    "default": (100, 250, 500, 1000, 2000),
    "smoke": (100, 1000),
}

#: the floor the curve enforces: at n >= this, array must beat
#: incremental outright (same schedules, byte-identical)
SCALING_FLOOR_N = 1000


def run_scaling_curve(preset: str, reps: int = 2) -> Dict:
    """BSA wall clock, incremental vs array, n=100 -> 2000.

    One gauss workload per size on the 16-processor hypercube (the
    microbench cell family). Modes are interleaved rep by rep and the
    per-mode minimum kept. The curve is the tentpole's scaling story:
    array overhead loses small, flat arrays win at n >= 1000 — so the
    bench fails outright if array does not beat incremental at every
    size >= ``SCALING_FLOOR_N``.
    """
    points = []
    floor_ok = True
    for size in SCALING_SIZES[preset]:
        cell = Cell("regular", "gauss", size, 1.0, "hypercube", "bsa",
                    n_procs=16, graph_seed=1, system_seed=1)
        best = {"incremental": float("inf"), "array": float("inf")}
        blobs = {}
        for rep in range(reps):
            for mode in ("incremental", "array"):
                set_hotpath_mode(mode)
                sched, elapsed = _schedule(cell)
                best[mode] = min(best[mode], elapsed)
                if rep == 0:
                    validate_schedule(sched)
                    blobs[mode] = schedule_to_json(sched)
        identical = blobs["incremental"] == blobs["array"]
        speedup = best["incremental"] / best["array"]
        if size >= SCALING_FLOOR_N and (speedup < 1.0 or not identical):
            floor_ok = False
        points.append({
            "n_tasks": size,
            "incremental_s": round(best["incremental"], 3),
            "array_s": round(best["array"], 3),
            "speedup_array": round(speedup, 2),
            "identical": identical,
        })
        sys.stderr.write(
            f"\rscaling n={size}: incremental {best['incremental']:.2f}s "
            f"array {best['array']:.2f}s = {speedup:.2f}x\n"
        )
    set_hotpath_mode("incremental")
    return {
        "points": points,
        "floor_n": SCALING_FLOOR_N,
        "floor_ok": floor_ok,
    }


def run_obs_guard(preset: str, reps: int = 3) -> Dict:
    """The observability overhead contract, enforced.

    Interleaves three configurations over the microbench workloads:
    obs **off** twice (their spread is the machine's noise floor on
    this run) and obs **on** once, keeping per-config minima. Asserts

    * schedules are byte-identical with collection on — telemetry can
      never leak into an artifact; and
    * the *enabled* overhead stays within ``max(10%, 4x noise)``. The
      disabled path (one module-attribute load + bool test per site) is
      a strict subset of the enabled one, so this bounds it too; its
      absolute cost is additionally covered by the committed
      ``BENCH_hotpath.json`` floors, which were recorded pre-obs.
    """
    from repro import obs

    workloads = MICROBENCH_WORKLOADS[preset]
    configs = ("off_a", "on", "off_b")
    totals = {c: 0.0 for c in configs}
    identical = True
    try:
        for suite, app, size, gran in workloads:
            cell = Cell(suite, app, size, gran, "hypercube", "bsa",
                        n_procs=16, graph_seed=1, system_seed=1)
            best = {c: float("inf") for c in configs}
            blobs = {}
            for rep in range(reps):
                for config in configs:
                    if config == "on":
                        obs.enable()
                        obs.reset()
                    else:
                        obs.disable()
                    sched, elapsed = _schedule(cell)
                    best[config] = min(best[config], elapsed)
                    if rep == 0:
                        blobs[config] = schedule_to_json(sched)
            identical = identical and len(set(blobs.values())) == 1
            for c in configs:
                totals[c] += best[c]
    finally:
        obs.disable()
        obs.reset()
        obs.reset_spans()
    off = min(totals["off_a"], totals["off_b"])
    noise = abs(totals["off_a"] - totals["off_b"]) / off
    overhead = totals["on"] / off - 1.0
    limit = max(0.10, 4.0 * noise)
    return {
        "off_s": round(off, 3),
        "on_s": round(totals["on"], 3),
        "noise": round(noise, 4),
        "enabled_overhead": round(overhead, 4),
        "overhead_limit": round(limit, 4),
        "identical_schedules": identical,
        "ok": identical and overhead <= limit,
    }


def effective_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores, which overstates what a
    cgroup-limited CI container or an affinity-pinned process can use —
    and a jobs-scaling leg on one usable core measures only fork
    overhead. Order: ``process_cpu_count`` (3.13+, affinity-aware) →
    ``sched_getaffinity`` → ``cpu_count`` → 1.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        n = getter()
        if n:
            return n
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def run_jobs_scaling(cells: List[Cell], jobs: int) -> Dict:
    """Wall clock of the parallel runner at --jobs 1 vs --jobs N."""
    timings = {}
    for n in (1, jobs):
        t0 = time.perf_counter()
        run_cells(cells, jobs=n, use_cache=False)
        timings[n] = time.perf_counter() - t0
    return {
        "jobs": jobs,
        "serial_s": round(timings[1], 3),
        "parallel_s": round(timings[jobs], 3),
        "speedup": round(timings[1] / timings[jobs], 2),
        "efficiency": round(timings[1] / timings[jobs] / jobs, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=["smoke", "default"], default="default")
    parser.add_argument("--jobs", type=int, default=0,
                        help="also measure parallel scaling at this job count")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--obs-guard", action="store_true",
                        help="run only the observability overhead guard "
                             "(byte-identity with REPRO_OBS=1 and the "
                             "enabled-overhead ceiling); exit 1 on "
                             "violation, no report written")
    args = parser.parse_args(argv)

    if args.obs_guard:
        og = run_obs_guard(args.preset)
        print(f"obs guard: off {og['off_s']}s -> on {og['on_s']}s "
              f"(overhead {og['enabled_overhead']:+.1%}, noise "
              f"{og['noise']:.1%}, limit {og['overhead_limit']:.1%}), "
              f"identical={og['identical_schedules']}")
        if not og["ok"]:
            print("FAIL: observability guard violated "
                  f"({'schedules differ with REPRO_OBS=1' if not og['identical_schedules'] else 'enabled overhead above limit'})",
                  file=sys.stderr)
            return 1
        return 0

    cells = sweep_cells(args.preset)
    print(f"hot-path bench: preset={args.preset}, {len(cells)} cells "
          f"({len(TOPOLOGIES)} topologies x {ALGORITHMS})")

    report = {
        "bench": "hotpath",
        "preset": args.preset,
        # scaling numbers are only meaningful relative to available cores;
        # host_cpus stays for schema compatibility, effective_cpus is
        # what the process can actually use (affinity/cgroup-aware)
        "host_cpus": os.cpu_count(),
        "effective_cpus": effective_cpus(),
        "single_process": run_single_process(cells),
    }
    sp = report["single_process"]
    print(f"single-process: legacy {sp['legacy_s']}s -> fast {sp['fast_s']}s "
          f"= {sp['speedup']}x -> incremental {sp['incremental_s']}s "
          f"= {sp['speedup_incremental']}x -> array {sp['array_s']}s "
          f"= {sp['speedup_array']}x, identical={sp['identical_schedules']}")

    report["settle_microbench"] = run_settle_microbench(args.preset)
    mb = report["settle_microbench"]
    print(f"settle/rollback microbench ({len(mb['workloads'])} BSA workloads, "
          f"n>=100): fast {mb['fast_s']}s -> incremental {mb['incremental_s']}s "
          f"= {mb['speedup']}x -> array {mb['array_s']}s "
          f"= {mb['speedup_array']}x, identical={mb['identical_schedules']}")

    report["obs_guard"] = run_obs_guard(args.preset)
    og = report["obs_guard"]
    print(f"obs guard: off {og['off_s']}s -> on {og['on_s']}s "
          f"(overhead {og['enabled_overhead']:+.1%}, limit "
          f"{og['overhead_limit']:.1%}), identical={og['identical_schedules']}")

    report["scaling_curve"] = run_scaling_curve(args.preset)
    sc = report["scaling_curve"]
    curve = ", ".join(
        f"n={p['n_tasks']}: {p['speedup_array']}x" for p in sc["points"]
    )
    print(f"scaling curve (incremental -> array): {curve}; "
          f"floor(n>={sc['floor_n']}) ok={sc['floor_ok']}")

    if args.jobs and args.jobs > 1:
        usable = report["effective_cpus"]
        if usable < 2:
            report["jobs_scaling"] = {
                "jobs": args.jobs,
                "skipped": True,
                "reason": f"only {usable} usable CPU "
                          f"(host reports {report['host_cpus']}); "
                          f"parallel timing would measure fork overhead",
            }
            print(f"parallel runner: skipped ({report['jobs_scaling']['reason']})")
        else:
            report["jobs_scaling"] = run_jobs_scaling(cells, args.jobs)
            js = report["jobs_scaling"]
            print(f"parallel runner: jobs=1 {js['serial_s']}s -> jobs={js['jobs']} "
                  f"{js['parallel_s']}s = {js['speedup']}x "
                  f"(efficiency {js['efficiency']:.0%})")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"report written to {out}")

    if not sp["identical_schedules"] or not mb["identical_schedules"]:
        print("FAIL: schedules differ between modes", file=sys.stderr)
        return 1
    if not all(p["identical"] for p in sc["points"]):
        print("FAIL: scaling-curve schedules differ between modes",
              file=sys.stderr)
        return 1
    if not sc["floor_ok"]:
        print(f"FAIL: array mode does not beat incremental at "
              f"n >= {sc['floor_n']}", file=sys.stderr)
        return 1
    if not og["ok"]:
        print("FAIL: observability guard violated (byte-identity or "
              "enabled overhead)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
