"""Table 1 / Figures 1-2: the paper's worked example.

Regenerates everything §2 narrates — per-processor CP lengths, pivot
selection, serialization order, and the final BSA schedule with its ASCII
Gantt chart — and benchmarks the full worked-example run.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper_example import run_paper_example
from repro.util.tables import format_table

from _bench_util import publish


@pytest.fixture(scope="module")
def example_result():
    return run_paper_example()


def test_table1_example(benchmark, example_result):
    sel = example_result["selection"]
    rows = [
        ["CP lengths (P1..P4)", ", ".join(f"{x:.0f}" for x in sel.cp_lengths)],
        ["paper publishes", "240, 226, 235, 260 (240/226 match; see EXPERIMENTS.md)"],
        ["first pivot", f"P{sel.pivot + 1}  (paper: P2)"],
        ["serial order", ", ".join(sel.serial_order)],
        ["paper order", "T1, T2, T6, T7, T3, T4, T8, T9, T5 (T6/T7 transposed)"],
        ["serialized SL", f"{example_result['serial_schedule_length']:.0f}"],
        ["BSA schedule length", f"{example_result['metrics'].schedule_length:.0f}  (paper: 138)"],
        ["total communication", f"{example_result['metrics'].total_comm_cost:.0f}  (paper: 200)"],
        ["migrations", f"{example_result['stats'].n_migrations}"],
    ]
    publish(
        "table1_example",
        format_table(["quantity", "value"], rows, title="Paper worked example")
        + "\n\n" + example_result["gantt"],
    )

    # qualitative anchor points of the reproduction
    assert sel.pivot == 1
    assert [round(x) for x in sel.cp_lengths[:2]] == [240, 226]
    assert example_result["metrics"].schedule_length < 238  # beats serialization

    benchmark(run_paper_example)
