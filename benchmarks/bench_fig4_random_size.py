"""Figure 4: average SL vs graph size — random graphs, four topologies."""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.figures import figure4
from repro.experiments.reporting import render_improvement_summary, render_panels
from repro.experiments.runner import build_cell_system
from repro.core.bsa import BSAOptions, schedule_bsa

from _bench_util import publish


@pytest.fixture(scope="module")
def fig4_panels(scale):
    return figure4(scale=scale)


def test_fig4_random_graphs_vs_size(benchmark, fig4_panels, scale):
    publish(
        "fig4_random_size",
        render_panels(fig4_panels) + "\n\n" + render_improvement_summary(fig4_panels),
    )
    for topo, fig in fig4_panels.items():
        ratios = [b / d for b, d in zip(fig.series["bsa"], fig.series["dls"])]
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio < 1.2, f"{topo}: BSA/DLS mean ratio {mean_ratio:.3f}"

    cell = Cell("random", "random", scale.sizes[0], 1.0, "hypercube", "bsa")
    system = build_cell_system(cell)
    benchmark(lambda: schedule_bsa(system, BSAOptions()))
