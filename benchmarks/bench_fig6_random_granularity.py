"""Figure 6: average SL vs granularity — random graphs, four topologies."""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.figures import figure6
from repro.experiments.reporting import render_improvement_summary, render_panels
from repro.experiments.runner import build_cell_system
from repro.baselines.dls import schedule_dls

from _bench_util import publish


@pytest.fixture(scope="module")
def fig6_panels(scale):
    return figure6(scale=scale)


def test_fig6_random_graphs_vs_granularity(benchmark, fig6_panels, scale):
    publish(
        "fig6_random_granularity",
        render_panels(fig6_panels) + "\n\n" + render_improvement_summary(fig6_panels),
    )
    for topo, fig in fig6_panels.items():
        for series in fig.series.values():
            assert series[0] > series[-1], (
                f"{topo}: SL(g=0.1) should exceed SL(g=10)"
            )

    cell = Cell("random", "random", scale.sizes[0], 10.0, "clique", "dls")
    system = build_cell_system(cell)
    benchmark(lambda: schedule_dls(system))
