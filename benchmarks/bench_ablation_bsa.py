"""Ablation study of BSA's design choices (beyond the paper).

DESIGN.md calls out four interpretation decisions; this bench quantifies
each against the reproduction defaults on a fixed random workload:

* ``bsa``             — defaults (global scope, shortest routes, sweeps to
                        convergence, always-examine trigger);
* ``bsa-1sweep``      — the ICPP text's single breadth-first sweep;
* ``bsa-neighbors``   — literal one-hop migration scope;
* ``bsa-incremental`` — literal hop-extension routing (+ neighbor scope);
* ``bsa-literal``     — all of the above plus the journal ST>DRT trigger;
* ``bsa-novip``       — VIP-following disabled;
* ``bsa-append``      — append instead of earliest-gap insertion;
* ``dls`` / ``dls-insertion`` — the baseline with and without the
                        insertion-capable link substrate.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.runner import build_cell_system, run_cell
from repro.util.tables import format_table

from _bench_util import publish

VARIANTS = [
    "bsa",
    "bsa-1sweep",
    "bsa-neighbors",
    "bsa-incremental",
    "bsa-literal",
    "bsa-novip",
    "bsa-append",
    "dls",
    "dls-insertion",
    "heft",
    "cpop",
    "etf",
]


@pytest.fixture(scope="module")
def ablation_results(scale):
    results = {}
    size = scale.sizes[min(1, len(scale.sizes) - 1)]
    for variant in VARIANTS:
        cell = Cell("random", "random", size, 1.0, "hypercube", variant)
        results[variant] = run_cell(cell)
    return results, size


def test_ablation_table(benchmark, ablation_results, scale):
    results, size = ablation_results
    base = results["bsa"].schedule_length
    rows = [
        [v, r.schedule_length, r.schedule_length / base, r.runtime_s]
        for v, r in results.items()
    ]
    publish(
        "ablation_bsa",
        format_table(
            ["variant", "SL", "vs bsa", "runtime s"],
            rows,
            title=f"BSA ablations — random graph n~{size}, hypercube16, g=1.0",
            ndigits=3,
        ),
    )
    # the reproduction defaults should dominate the literal-text variants
    assert results["bsa"].schedule_length <= results["bsa-literal"].schedule_length
    assert results["bsa"].schedule_length <= results["bsa-incremental"].schedule_length

    cell = Cell("random", "random", scale.sizes[0], 1.0, "hypercube", "bsa-literal")
    system = build_cell_system(cell)
    from repro.core.bsa import BSAOptions, schedule_bsa

    benchmark(
        lambda: schedule_bsa(
            system,
            BSAOptions(migration_trigger="st_gt_drt", migration_scope="neighbors",
                       route_mode="incremental", n_sweeps=1),
        )
    )
