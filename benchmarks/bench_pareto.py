"""Pareto-front sweep benchmark: the golden multi-objective cell.

Runs the same fat-tree n=100 cell the equivalence suite pins
(``tests/test_hotpath_equivalence.py::TestGoldenPareto``) through
:func:`~repro.experiments.pareto.run_pareto` — every scheduler scored
on all four objectives — and records:

* the per-algorithm objective vector (rounded for the EXPERIMENTS §12
  table; the exact floats are pinned by the test suite, not here);
* the non-dominated front;
* byte-identity of the serialized artifact between ``--jobs 1`` and
  ``--jobs 2`` (the acceptance criterion for the service endpoint);
* wall-clock for the whole sweep (telemetry only — everything else in
  the artifact is deterministic).

Usage::

    PYTHONPATH=src python benchmarks/bench_pareto.py            # default
    PYTHONPATH=src python benchmarks/bench_pareto.py --preset smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.config import Cell
from repro.experiments.pareto import pareto_to_json, run_pareto
from repro.util.intervals import hotpath_mode

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_pareto.json")

#: the golden Pareto cell (same as the equivalence suite) and a smoke
#: variant small enough for CI legs
CELLS = {
    "default": Cell("regular", "gauss", 100, 1.0, "fattree", "bsa",
                    n_procs=8, graph_seed=2, system_seed=2),
    "smoke": Cell("regular", "gauss", 40, 1.0, "ring", "bsa",
                  n_procs=8, graph_seed=2, system_seed=2),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=("smoke", "default"),
                        default="default")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    cell = CELLS[args.preset]
    t0 = time.perf_counter()
    doc, report = run_pareto(cell, use_cache=False)
    elapsed = time.perf_counter() - t0
    doc2, _ = run_pareto(cell, jobs=2, use_cache=False)
    jobs_identical = pareto_to_json(doc) == pareto_to_json(doc2)
    assert jobs_identical, "--jobs 2 artifact drifted from --jobs 1"

    points = []
    for p in doc["points"]:
        v = p["values"]
        points.append({
            "algorithm": p["algorithm"],
            "makespan": round(v["makespan"], 1),
            "energy": round(v["energy"], 1),
            "reliability": round(v["reliability"], 4),
            "throughput": round(v["throughput"], 1),
            "on_front": p["on_front"],
        })
        marker = "*" if p["on_front"] else " "
        print(f"{marker} {p['algorithm']:9s} makespan {v['makespan']:12.1f}  "
              f"energy {v['energy']:12.1f}  reliability {v['reliability']:.4f}  "
              f"throughput {v['throughput']:12.1f}")
    print(f"front: {doc['front']}  ({report.computed} cells in "
          f"{elapsed:.2f} s, jobs 1 == jobs 2: {jobs_identical})")

    out = {
        "bench": "pareto",
        "preset": args.preset,
        "engine_mode": hotpath_mode(),
        "cell": cell.key(),
        "objectives": doc["objectives"],
        "front": doc["front"],
        "points": points,
        "jobs_identical": jobs_identical,
        "elapsed_s": round(elapsed, 2),
    }
    with open(args.out, "w") as fh:
        json.dump(out, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
