"""Figure 5: average SL vs granularity — regular graphs, four topologies.

Shares its cell runs with Figure 3 (the on-disk cache makes the second
aggregation nearly free) and re-averages them over sizes per granularity.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.figures import figure5
from repro.experiments.reporting import render_improvement_summary, render_panels
from repro.experiments.runner import build_cell_system
from repro.baselines.dls import schedule_dls

from _bench_util import publish


@pytest.fixture(scope="module")
def fig5_panels(scale):
    return figure5(scale=scale)


def test_fig5_regular_graphs_vs_granularity(benchmark, fig5_panels, scale):
    publish(
        "fig5_regular_granularity",
        render_panels(fig5_panels) + "\n\n" + render_improvement_summary(fig5_panels),
    )
    # paper shape: schedule lengths increase sharply as granularity drops
    for topo, fig in fig5_panels.items():
        for series in fig.series.values():
            fine, coarse = series[0], series[-1]
            assert fine > coarse, f"{topo}: SL(g=0.1) should exceed SL(g=10)"

    cell = Cell("regular", scale.regular_apps[0], scale.sizes[0], 0.1, "ring", "dls")
    system = build_cell_system(cell)
    benchmark(lambda: schedule_dls(system))
