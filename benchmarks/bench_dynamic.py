"""Online-rescheduling benchmark: cone repair vs full tail replan.

Runs seeded arrival/failure scenarios (see ``repro.dynamic``) against
static BSA schedules and measures what the committed-prefix repair
engine buys over the replan oracle:

* **quality** — final schedule length of the repaired schedule vs the
  from-scratch tail replan (``sl_ratio`` <= 1 means repair matched or
  beat the oracle);
* **wall-clock** — repair only re-places the event's cone, the oracle
  re-places the whole tail, so repair should win the clock;
* **determinism** — every scenario is run twice from a fresh system and
  the deterministic event logs must be byte-identical, and once per
  hot-path mode (legacy / fast / incremental / array) with the same
  assertion.

The prefix-intact and validator-clean invariants are enforced inside
:func:`repro.dynamic.simulate` itself (it raises on violation), so a
bench run doubles as an invariant sweep. Results go to
``BENCH_dynamic.json`` (repo root by default); ``--log`` additionally
writes the concatenated event logs for byte-comparison across runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py              # default
    PYTHONPATH=src python benchmarks/bench_dynamic.py --preset smoke
    PYTHONPATH=src python benchmarks/bench_dynamic.py --log events.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.bsa import BSAOptions, schedule_bsa
from repro.dynamic import simulate
from repro.dynamic.events import FailureInjector, parse_scenario
from repro.experiments.config import Cell
from repro.experiments.runner import build_cell_system
from repro.schedule.validator import validate_schedule
from repro.util.intervals import set_hotpath_mode

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_dynamic.json")

MODES = ("legacy", "fast", "incremental", "array")

#: (app, size, topology, n_procs, scenario) — scenario tokens are
#: f<procs>l<links>a<arrivals>s<seed>, parse_scenario's grammar
SCENARIOS = {
    "smoke": [
        ("gauss", 40, "ring", 8, "f1a1s0"),
        ("gauss", 40, "hypercube", 8, "f1l1a2s1"),
    ],
    "default": [
        ("gauss", 80, "ring", 8, "f1a1s0"),
        ("gauss", 80, "hypercube", 16, "f1l1a2s1"),
        ("laplace", 100, "hypercube", 16, "f2a2s2"),
        ("random", 100, "clique", 16, "f1l1a1s3"),
        ("gauss", 150, "hypercube", 16, "f1a3s4"),
    ],
}


def _fresh_run(config, compare_replan: bool = True):
    """Build system + static schedule and run the scenario once.

    ``simulate`` mutates the graph (arrivals) and the schedule in
    place, so every rep must start from a fresh build.
    """
    app, size, topology, n_procs, scenario = config
    suite = "random" if app == "random" else "regular"
    cell = Cell(suite, app, size, 1.0, topology, "bsa", n_procs=n_procs)
    system = build_cell_system(cell)
    sched = schedule_bsa(system, BSAOptions())
    validate_schedule(sched)
    static_sl = sched.schedule_length()
    events = FailureInjector(
        system, parse_scenario(scenario), static_sl
    ).events()
    sim = simulate(sched, events, compare_replan=compare_replan)
    return static_sl, sim


def bench_scenario(config, reps: int = 2) -> Dict:
    """Run one scenario ``reps`` times; assert log determinism."""
    app, size, topology, n_procs, scenario = config
    logs: List[str] = []
    best = {"repair_s": float("inf"), "replan_s": float("inf")}
    static_sl = 0.0
    sim = None
    for _ in range(reps):
        static_sl, sim = _fresh_run(config)
        logs.append(sim.log_json())
        best["repair_s"] = min(best["repair_s"], sim.repair_wall_s)
        best["replan_s"] = min(best["replan_s"], sim.replan_wall_s)
    deterministic = len(set(logs)) == 1
    records = sim.records
    ratios = [
        r.sl_after / r.sl_replan for r in records if r.sl_replan
    ]
    return {
        "workload": f"{app}-n{size}",
        "topology": f"{topology}{n_procs}",
        "scenario": scenario,
        "n_events": len(records),
        "repairs": sum(1 for r in records if r.strategy == "repair"),
        "replan_fallbacks": sum(1 for r in records if r.strategy == "replan"),
        "static_sl": round(static_sl, 3),
        "final_sl": round(sim.schedule.schedule_length(), 3),
        "degradation": round(sim.schedule.schedule_length() / static_sl, 3),
        "mean_sl_ratio": (
            round(sum(ratios) / len(ratios), 3) if ratios else None
        ),
        "repair_s": round(best["repair_s"], 4),
        "replan_s": round(best["replan_s"], 4),
        "repair_speedup": round(best["replan_s"] / best["repair_s"], 2),
        "deterministic": deterministic,
        "log": logs[0],
    }


def bench_mode_identity(config) -> Dict:
    """The event log must be byte-identical across hot-path modes."""
    logs = {}
    try:
        for mode in MODES:
            set_hotpath_mode(mode)
            _, sim = _fresh_run(config, compare_replan=False)
            logs[mode] = sim.log_json()
    finally:
        set_hotpath_mode("incremental")
    return {
        "scenario": config[4],
        "workload": f"{config[0]}-n{config[1]}",
        "identical": len(set(logs.values())) == 1,
        "modes": list(MODES),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    scale = os.environ.get("REPRO_SCALE", "default")
    parser.add_argument(
        "--preset", choices=["smoke", "default"],
        default="smoke" if scale == "smoke" else "default",
        help="scenario grid size (default follows REPRO_SCALE)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--log", default=None,
                        help="also write concatenated event logs (for cmp)")
    args = parser.parse_args(argv)

    configs = SCENARIOS[args.preset]
    print(f"dynamic bench: preset={args.preset}, {len(configs)} scenarios")

    t0 = time.perf_counter()
    scenarios = []
    for i, config in enumerate(configs):
        res = bench_scenario(config)
        scenarios.append(res)
        print(f"  [{i + 1}/{len(configs)}] {res['workload']} "
              f"{res['topology']} {res['scenario']}: "
              f"{res['n_events']} events ({res['repairs']} repaired, "
              f"{res['replan_fallbacks']} replanned), "
              f"SL {res['static_sl']} -> {res['final_sl']} "
              f"(x{res['degradation']}), repair {res['repair_s']}s vs "
              f"replan {res['replan_s']}s = {res['repair_speedup']}x, "
              f"deterministic={res['deterministic']}")

    identity = bench_mode_identity(configs[0])
    print(f"  mode identity ({identity['workload']} {identity['scenario']}): "
          f"identical={identity['identical']} across {MODES}")

    logs = [json.loads(s.pop("log")) for s in scenarios]
    repair_total = sum(s["repair_s"] for s in scenarios)
    replan_total = sum(s["replan_s"] for s in scenarios)
    report = {
        "bench": "dynamic",
        "preset": args.preset,
        "scenarios": scenarios,
        "repair_s": round(repair_total, 4),
        "replan_s": round(replan_total, 4),
        "repair_speedup": round(replan_total / repair_total, 2),
        "deterministic": all(s["deterministic"] for s in scenarios),
        "mode_identity": identity,
        "wall_s": round(time.perf_counter() - t0, 1),
    }

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"aggregate: repair {report['repair_s']}s vs replan "
          f"{report['replan_s']}s = {report['repair_speedup']}x; "
          f"report written to {out}")

    if args.log:
        with open(args.log, "w") as fh:
            json.dump(logs, fh, indent=2)
            fh.write("\n")
        print(f"event logs written to {args.log}")

    if not report["deterministic"]:
        print("FAIL: event logs differ between reps", file=sys.stderr)
        return 1
    if not identity["identical"]:
        print("FAIL: event logs differ between hot-path modes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
