"""Connectivity ablation (extends the paper's topology observation).

The paper's Figures 3/4 panels show both algorithms producing shorter
schedules as processor connectivity rises and BSA's advantage growing as
it falls. This bench sweeps seven topologies from chain to clique on one
workload and asserts the monotone trend at the extremes.
"""

from __future__ import annotations

import pytest

from repro import (
    HeterogeneousSystem,
    binary_tree,
    chain,
    clique,
    hypercube,
    mesh2d,
    random_topology,
    ring,
    schedule_bsa,
    schedule_dls,
)
from repro.core.bsa import BSAOptions
from repro.schedule.validator import validate_schedule
from repro.util.tables import format_table
from repro.workloads import random_graph

from _bench_util import publish


@pytest.fixture(scope="module")
def connectivity_sweep(scale):
    graph = random_graph(scale.sizes[0], granularity=1.0, seed=3)
    topologies = [
        chain(16), binary_tree(16), ring(16), mesh2d(4, 4),
        random_topology(16, 2, 8, seed=3), hypercube(16), clique(16),
    ]
    rows = []
    for topo in topologies:
        system = HeterogeneousSystem.sample(graph, topo, het_range=(1, 50), seed=3)
        bsa = schedule_bsa(system)
        dls = schedule_dls(system)
        validate_schedule(bsa)
        validate_schedule(dls)
        rows.append((topo.name, topo.n_links, topo.diameter(),
                     bsa.schedule_length(), dls.schedule_length()))
    return graph, rows


def test_connectivity_trend(benchmark, connectivity_sweep):
    graph, rows = connectivity_sweep
    publish(
        "connectivity_sweep",
        format_table(
            ["topology", "links", "diameter", "BSA SL", "DLS SL"],
            [[*r] for r in rows],
            title=f"Connectivity sweep — {graph.name}, 16 processors, het U[1,50]",
        ),
    )
    by_name = {name: (bsa, dls) for name, _, _, bsa, dls in rows}
    # extremes: clique beats chain for both algorithms (monotone trend)
    assert by_name["clique16"][0] < by_name["chain16"][0]
    assert by_name["clique16"][1] < by_name["chain16"][1]
    # BSA's advantage is largest at the sparse end (paper's observation)
    chain_ratio = by_name["chain16"][0] / by_name["chain16"][1]
    clique_ratio = by_name["clique16"][0] / by_name["clique16"][1]
    assert chain_ratio <= clique_ratio + 0.05

    system = HeterogeneousSystem.sample(graph, ring(16), het_range=(1, 50), seed=3)
    benchmark(lambda: schedule_bsa(system, BSAOptions()))
