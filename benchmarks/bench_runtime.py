"""Scheduler runtime study (§3's closing remark).

The paper measured "the running times of both algorithms, which were
about the same because the two algorithms are of comparable time
complexity". This bench times BSA and DLS on the same workload so
pytest-benchmark's comparison table reports the ratio directly, and
publishes a wall-clock-vs-size series.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import runtime_study
from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_cell_system
from repro.experiments.config import Cell
from repro.baselines.dls import schedule_dls
from repro.core.bsa import BSAOptions, schedule_bsa

from _bench_util import publish


@pytest.fixture(scope="module")
def runtime_system(scale):
    cell = Cell("random", "random", scale.sizes[-1], 1.0, "hypercube", "bsa")
    return build_cell_system(cell)


@pytest.mark.benchmark(group="runtime")
def test_runtime_bsa(benchmark, runtime_system):
    schedule = benchmark(lambda: schedule_bsa(runtime_system, BSAOptions()))
    assert schedule.schedule_length() > 0


@pytest.mark.benchmark(group="runtime")
def test_runtime_dls(benchmark, runtime_system):
    schedule = benchmark(lambda: schedule_dls(runtime_system))
    assert schedule.schedule_length() > 0


def test_runtime_series(benchmark, scale):
    fig = runtime_study(scale=scale)
    publish("runtime_vs_size", render_figure(fig, ndigits=3))
    assert all(v >= 0 for series in fig.series.values() for v in series)
    # the timed portion is just the rendering; the series above is cached
    benchmark(lambda: render_figure(fig, ndigits=3))
