"""Per-application breakdown (paper §3: "each algorithm generated similar
performance for the three types of applications").

The paper averages its regular-suite results across applications because
the per-app behaviour was similar; this bench verifies that claim holds
in the reproduction — the BSA/DLS ratio per application should cluster,
with no app flipping the verdict by itself.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.runner import run_cell
from repro.util.tables import format_table

from _bench_util import publish

APPS = ("gauss", "lu", "laplace", "mva")


@pytest.fixture(scope="module")
def per_app(scale):
    results = {}
    size = scale.sizes[-1]
    for app in APPS:
        sls = {}
        for algorithm in ("dls", "bsa"):
            values = []
            for gran in scale.granularities:
                cell = Cell("regular", app, size, gran, "ring", algorithm)
                values.append(run_cell(cell).schedule_length)
            # geometric mean over granularities (they span two decades)
            prod = 1.0
            for v in values:
                prod *= v
            sls[algorithm] = prod ** (1.0 / len(values))
        results[app] = sls
    return results, size


def test_per_app_consistency(benchmark, per_app, scale):
    results, size = per_app
    rows = [
        [app, sls["dls"], sls["bsa"], sls["bsa"] / sls["dls"]]
        for app, sls in results.items()
    ]
    publish(
        "per_app_breakdown",
        format_table(
            ["application", "DLS (geomean SL)", "BSA (geomean SL)", "BSA/DLS"],
            rows,
            title=f"Per-application behaviour — n~{size}, ring16, geomean over granularities",
            ndigits=3,
        ),
    )
    ratios = [sls["bsa"] / sls["dls"] for sls in results.values()]
    # similar performance across applications: ratios within a 0.45 band
    assert max(ratios) - min(ratios) < 0.45, ratios

    cell = Cell("regular", "mva", scale.sizes[0], 1.0, "ring", "bsa")
    benchmark(lambda: run_cell(cell, use_cache=False))
