"""Observability bench: deterministic counter profiles per engine mode.

Runs the pinned observability cell (``random`` n=40 on ring16, BSA —
the same cell ``tests/test_obs.py`` goldens) under every
``REPRO_HOTPATH`` engine with counter collection on and records the
non-zero counters per mode. The schedules are byte-identical across
modes by contract; the counters are deliberately *not* — they profile
each engine's work (the legacy engine never runs an incremental
settle, only the array engine touches the route trie), which is
exactly what makes them useful engine regression pins.

Also re-checks the two determinism contracts the counters carry:

* **rep-to-rep** — two runs of the same cell produce identical
  snapshots;
* **--jobs independence** — a 6-cell grid counted serially equals the
  same grid counted across 2 worker processes (per-chunk deltas merge
  commutatively).

Writes ``BENCH_obs.json`` (repo root by default); EXPERIMENTS.md §13
is generated from the committed report and a docs test keeps the two
in sync. Exits 1 if either determinism contract fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs
from repro.experiments.config import Cell
from repro.experiments.runner import run_cells
from repro.util.intervals import HOTPATH_MODES, set_hotpath_mode

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

#: the pinned cell — must stay the one tests/test_obs.py goldens
CELL = Cell(suite="random", app="random", size=40, granularity=1.0,
            topology="ring", algorithm="bsa", graph_seed=0, system_seed=0)

#: the --jobs identity grid — mirrors tests/test_obs.py
GRID = [
    Cell(suite="random", app="random", size=s, granularity=1.0,
         topology="ring", algorithm=a, graph_seed=s, system_seed=s)
    for s in (18, 20, 22) for a in ("bsa", "dls")
]


def counters_for(cells: List[Cell], jobs: int = 1,
                 chunk_size: Optional[int] = None) -> Dict[str, int]:
    """Non-zero counter snapshot of one sweep, collection scoped."""
    obs.enable()
    obs.reset()
    try:
        run_cells(cells, jobs=jobs, chunk_size=chunk_size, use_cache=False)
        return {k: v for k, v in obs.snapshot().items() if v}
    finally:
        obs.reset()
        obs.reset_spans()
        obs.disable()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    per_mode: Dict[str, Dict[str, int]] = {}
    for mode in HOTPATH_MODES:
        try:
            set_hotpath_mode(mode)
        except Exception as exc:  # array without numpy
            print(f"mode {mode}: skipped ({exc})", file=sys.stderr)
            continue
        per_mode[mode] = counters_for([CELL])
        print(f"mode {mode:>11}: " + ", ".join(
            f"{k.split('.', 1)[1]}={v}" for k, v in per_mode[mode].items()
            if k.startswith(("bsa.", "settle.", "route."))
        ))
    set_hotpath_mode("incremental")

    first = counters_for([CELL])
    reps_identical = first == counters_for([CELL])
    serial = counters_for(GRID, jobs=1)
    parallel = counters_for(GRID, jobs=2, chunk_size=2)
    jobs_identical = serial == parallel
    print(f"rep-to-rep identical: {reps_identical}; "
          f"--jobs 1 == --jobs 2: {jobs_identical}")

    report = {
        "bench": "obs",
        "cell": CELL.key(),
        "modes": per_mode,
        "grid_cells": len(GRID),
        "grid_counters": serial,
        "reps_identical": reps_identical,
        "jobs_identical": jobs_identical,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {out}")

    if not (reps_identical and jobs_identical):
        print("FAIL: counter determinism contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
