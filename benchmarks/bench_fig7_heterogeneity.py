"""Figure 7: effect of the heterogeneity range — random graphs, hypercube.

The paper widens exec-cost factors over [1,10] / [1,50] / [1,100] / [1,200]
and reports both algorithms slowing down, BSA more gracefully than DLS.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.figures import figure7
from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_cell_system
from repro.core.bsa import BSAOptions, schedule_bsa

from _bench_util import publish


@pytest.fixture(scope="module")
def fig7(scale):
    return figure7(scale=scale)


def test_fig7_heterogeneity(benchmark, fig7, scale):
    publish("fig7_heterogeneity", render_figure(fig7))
    # paper shape: BSA tracks or beats DLS across the heterogeneity sweep
    ratios = [b / d for b, d in zip(fig7.series["bsa"], fig7.series["dls"])]
    assert sum(ratios) / len(ratios) < 1.2

    cell = Cell(
        "random", "random", scale.het_sweep_sizes[0], 1.0, "hypercube",
        "bsa", het_lo=1, het_hi=200,
    )
    system = build_cell_system(cell)
    benchmark(lambda: schedule_bsa(system, BSAOptions()))
