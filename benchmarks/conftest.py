"""Shared benchmark infrastructure.

Every figure bench (a) regenerates its figure's data through the cached
experiment runner, (b) prints the paper-style ASCII table and writes it to
``benchmarks/out/``, and (c) hands pytest-benchmark one representative
scheduling call so the timing tables stay meaningful.

Scale control: benches default to the ``smoke`` grid so a cold
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_SCALE=default`` or ``REPRO_SCALE=full`` for the larger grids
(results are cached on disk across runs, so re-aggregation is free).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale, current_scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    return current_scale(default="smoke")
