"""Service throughput benchmark: ``repro serve`` cold vs warm cache.

Stands up a real :class:`~repro.service.http.ReproServer` on a loopback
port and measures ``POST /schedule`` end to end — request parsing, the
pipeline, bundle serialization, HTTP framing — at two workload sizes:

* **cold** — every request computes (``use_cache=False`` server), so
  the numbers are dominated by the scheduler itself;
* **warm** — a shared cache primed by the first request, so every
  subsequent request is an idempotency-key lookup serving the cached
  canonical bundle. The warm/cold ratio is what the service layer's
  memoization buys an interactive client.

Requests run sequentially from one client connection — the interesting
quantity is per-request latency (p50/p95) and the derived serial
req/sec, not concurrency scaling (the scheduler is CPU-bound; the
threaded server exists for slow clients, not parallel speedup).

Byte-identity is asserted on every response: each body must equal the
bundle the pipeline computes directly, cold or warm.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # default
    PYTHONPATH=src python benchmarks/bench_serve.py --preset smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.cache import ResultCache
from repro.service import ScheduleRequest, execute
from repro.service.http import make_server
from repro.util.intervals import hotpath_mode

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")

#: (label, request payload) — n=100 is the paper-scale interactive case,
#: n=1000 is the array-engine scale where compute dominates transport
CASES = {
    "smoke": [
        ("n100", {"workload": "gauss", "size": 100, "topology": "ring",
                  "n_procs": 8, "algorithm": "heft", "seed": 1}),
    ],
    "default": [
        ("n100", {"workload": "gauss", "size": 100, "topology": "ring",
                  "n_procs": 8, "algorithm": "heft", "seed": 1}),
        ("n1000", {"workload": "random", "size": 1000, "topology": "hypercube",
                   "n_procs": 16, "algorithm": "heft", "seed": 1}),
    ],
}

REPEATS = {"smoke": 5, "default": 20}


def _serve_in_thread(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _post_schedule(host, port, payload: dict):
    conn = http.client.HTTPConnection(host, port, timeout=600)
    try:
        t0 = time.perf_counter()
        conn.request("POST", "/schedule", body=json.dumps(payload).encode())
        resp = conn.getresponse()
        body = resp.read()
        elapsed = time.perf_counter() - t0
    finally:
        conn.close()
    assert resp.status == 200, body.decode(errors="replace")
    return elapsed, resp.getheader("X-Repro-Cache"), body


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[int(idx)]


def _bench_case(label: str, payload: dict, repeats: int,
                tmp_dir: str) -> Dict:
    expected = execute(ScheduleRequest.from_dict(payload),
                       use_cache=False).bundle_text.encode()

    out: Dict = {"case": label, "n_tasks": payload["size"],
                 "algorithm": payload["algorithm"], "repeats": repeats}
    for phase, use_cache in (("cold", False), ("warm", True)):
        # a private primed cache per case keeps phases independent
        if use_cache:
            cache = ResultCache(os.path.join(tmp_dir, f"{label}.cache"))
            execute(ScheduleRequest.from_dict(payload), cache=cache)
            import repro.experiments.cache as cache_mod
            cache_mod._default_cache = cache
        server = make_server(use_cache=use_cache, quiet=True)
        _serve_in_thread(server)
        host, port = server.server_address[:2]
        try:
            samples = []
            for _ in range(repeats):
                elapsed, cache_header, body = _post_schedule(
                    host, port, payload)
                assert body == expected, "served bundle drifted"
                assert cache_header == ("hit" if use_cache else "off")
                samples.append(elapsed)
        finally:
            server.shutdown()
            server.server_close()
        out[phase] = {
            "p50_ms": round(_percentile(samples, 0.50) * 1000, 2),
            "p95_ms": round(_percentile(samples, 0.95) * 1000, 2),
            "req_per_s": round(repeats / sum(samples), 1),
        }
    out["warm_speedup"] = round(
        out["cold"]["p50_ms"] / out["warm"]["p50_ms"], 1)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=("smoke", "default"),
                        default="default")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    import tempfile

    results = []
    with tempfile.TemporaryDirectory() as tmp_dir:
        for label, payload in CASES[args.preset]:
            result = _bench_case(label, payload, REPEATS[args.preset], tmp_dir)
            results.append(result)
            print(f"{label}: cold p50 {result['cold']['p50_ms']} ms "
                  f"({result['cold']['req_per_s']} req/s), "
                  f"warm p50 {result['warm']['p50_ms']} ms "
                  f"({result['warm']['req_per_s']} req/s), "
                  f"{result['warm_speedup']}x")

    report = {
        "bench": "serve",
        "preset": args.preset,
        "engine_mode": hotpath_mode(),
        "cases": results,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
