"""Helpers shared by the benchmark files (kept out of conftest so the
module can be imported unambiguously as ``_bench_util``)."""

from __future__ import annotations

import os
import sys

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    # stdout so `pytest -s` / captured-output sections show the tables
    sys.stdout.write(f"\n===== {name} (saved to {path}) =====\n{text}\n")
